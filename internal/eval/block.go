package eval

// Vectorized (block-at-a-time) execution of compiled join programs.
// The tuple executor in compile.go walks one register frame through
// the steps per candidate; this executor pushes a columnar frame — a
// struct-of-arrays of interned term.ID register columns — of up to
// BatchSize rows through each step at a time, so probes, tests and
// head insertion run as tight loops over dense ID slices with
// amortized dispatch. Frames stay in ID space end to end: scans gather
// candidate IDs straight from the relation's columns (ColumnAt /
// AppendMatchesID), and terms are only materialized at the edges —
// pattern decomposition, arithmetic, and genuinely new head tuples.
//
// Equivalence contract. Block execution preserves the tuple executor's
// answers, error, and work counters exactly:
//
//   - Emission order is depth-first-identical: a scan appends matches
//     in candidate order and flushes the output frame downstream
//     before gathering more, so head tuples arrive in the order the
//     tuple executor derives them.
//   - Error order is depth-first-equivalent: when a row fails in a
//     filter step, the rows ordered before it keep running through the
//     remaining steps first (their emissions happen; their own error,
//     if any, wins — it is earlier in depth-first order), then the
//     remembered error returns and the rows after it never run.
//   - Counters tick per row exactly where the tuple executor ticks
//     per call: Lookups once per input row of a scan or negation,
//     Unifications once per scan candidate, BuiltinCalls once per row
//     of a test/assign/match step.
//   - Visibility: a block batches probes ahead of downstream emits, so
//     a scan must never read the relation being inserted into. Only
//     the head relation is ever written during an application, so
//     applyCompiled routes applications whose scans alias the head
//     (direct-mode seed rounds and naive-method rounds of recursive
//     cliques) to the tuple executor instead. Frozen-mode (parallel)
//     applications buffer their emissions and always batch.

import (
	"ldl/internal/lang"
	"ldl/internal/store"
	"ldl/internal/term"
)

// DefaultBatchSize is the tuned default block size: large enough to
// amortize per-block costs, small enough that a frame's register
// columns stay cache-resident (256 rows × 4-byte IDs = 1KiB/register).
const DefaultBatchSize = 256

// bframe is one columnar register frame: cols[reg][row] is the
// interned ID bound to reg at that row. Scan-output frames are dense
// (rows 0..n-1 valid); filter steps narrow a frame with a selection
// vector instead of compacting the columns.
type bframe struct {
	cols [][]term.ID
	n    int
}

// blockState is the reusable vectorized execution state of one
// compiled rule in one evaluation context — the block twin of
// kernelState, pooled the same way (per clique sequentially, per
// worker in the parallel engine) so steady-state blocks allocate
// nothing.
type blockState struct {
	size   int
	root   *bframe       // single-row entry frame
	frames []*bframe     // per scanIdx: that scan's output frame
	sels   [][]int32     // per step index: selection scratch
	ident  []int32       // identity selection 0..size-1, read-only
	probes [][]term.ID   // per scanIdx: probe ID row, const IDs prefilled
	rcols  [][][]term.ID // per scanIdx: borrowed relation columns
	negIDs [][]term.ID   // per negIdx: ID row, const IDs prefilled

	headIDs   [][]term.ID // direct mode: columnar head materialization
	headRow   []term.ID   // frozen mode: per-row head scratch
	headConst []term.ID   // per head column: const ID, 0 otherwise
}

func newBlockState(cr *compiledRule, size int) *blockState {
	newFrame := func(rows int) *bframe {
		f := &bframe{cols: make([][]term.ID, cr.nregs)}
		for i := range f.cols {
			f.cols[i] = make([]term.ID, rows)
		}
		return f
	}
	bs := &blockState{
		size:   size,
		root:   newFrame(1),
		frames: make([]*bframe, cr.nscans),
		sels:   make([][]int32, len(cr.steps)),
		ident:  make([]int32, size),
		probes: make([][]term.ID, cr.nscans),
		rcols:  make([][][]term.ID, cr.nscans),
		negIDs: make([][]term.ID, cr.nnegs),
	}
	for i := range bs.frames {
		bs.frames[i] = newFrame(size)
	}
	for i := range bs.ident {
		bs.ident[i] = int32(i)
	}
	for _, st := range cr.steps {
		switch st.kind {
		case kScan:
			p := make([]term.ID, len(st.cols))
			for i, c := range st.cols {
				if c.op == kcolConst {
					p[i] = term.Intern(c.val)
				}
			}
			bs.probes[st.scanIdx] = p
			bs.rcols[st.scanIdx] = make([][]term.ID, len(st.cols))
		case kNeg:
			row := make([]term.ID, len(st.negCols))
			for i, tm := range st.negCols {
				if tm.reg < 0 {
					row[i] = term.Intern(tm.lit)
				}
			}
			bs.negIDs[st.negIdx] = row
		}
	}
	bs.headIDs = make([][]term.ID, len(cr.head))
	for i := range bs.headIDs {
		bs.headIDs[i] = make([]term.ID, size)
	}
	bs.headRow = make([]term.ID, len(cr.head))
	bs.headConst = make([]term.ID, len(cr.head))
	for i, c := range cr.head {
		if c.op == kcolConst {
			bs.headConst[i] = term.Intern(c.val)
		}
	}
	return bs
}

// aliasesHead reports whether any resolved scan or negation relation
// is the head relation itself — the one configuration block execution
// cannot batch (see the visibility note in the package comment).
func (ks *kernelState) aliasesHead(head *store.Relation) bool {
	for _, r := range ks.rels {
		if r == head {
			return true
		}
	}
	for _, r := range ks.negRels {
		if r == head {
			return true
		}
	}
	return false
}

// blockRun executes one rule application block-at-a-time. It wraps the
// tuple executor's kernelRun (same resolved relations, same emit
// targets) with the columnar state.
type blockRun struct {
	*kernelRun
	bs *blockState
}

// applyBlocked runs the join program vectorized, starting from a
// single-row root frame (no registers are bound before step 0).
func (k *kernelRun) applyBlocked(size int) error {
	ks := k.ks
	if ks.blk == nil || ks.blk.size != size {
		ks.blk = newBlockState(k.cr, size)
	}
	b := &blockRun{kernelRun: k, bs: ks.blk}
	return b.run(0, b.bs.root, b.bs.ident[:1])
}

// run executes the join program from step si onward over the selected
// rows of frame f.
func (b *blockRun) run(si int, f *bframe, sel []int32) error {
	if len(sel) == 0 {
		return nil
	}
	// Same deadline discipline as the tuple executor, amortized: tick
	// once per (step, block) instead of once per row.
	if err := b.cx.e.opts.Gov.Tick(); err != nil {
		return err
	}
	if si == len(b.cr.steps) {
		return b.emit(f, sel)
	}
	st := &b.cr.steps[si]
	switch st.kind {
	case kScan:
		return b.scan(si, st, f, sel)
	case kTest:
		keep := b.bs.sels[si][:0]
		var rowErr error
		for _, r := range sel {
			b.cx.counters.BuiltinCalls++
			ok, err := b.evalTestRow(st, f, r)
			if err != nil {
				// Depth-first error discipline: finish the rows ordered
				// before this one (their error, if any, is earlier and
				// wins), drop the rows after it, then surface this error.
				rowErr = err
				break
			}
			if ok {
				keep = append(keep, r)
			}
		}
		b.bs.sels[si] = keep
		if err := b.run(si+1, f, keep); err != nil {
			return err
		}
		return rowErr
	case kAssign:
		keep := b.bs.sels[si][:0]
		var rowErr error
		dst := f.cols[st.dstReg]
		for _, r := range sel {
			b.cx.counters.BuiltinCalls++
			id, err := b.resolveNormRowID(st.rhs, f, r)
			if err != nil {
				rowErr = err
				break
			}
			dst[r] = id
			keep = append(keep, r)
		}
		b.bs.sels[si] = keep
		if err := b.run(si+1, f, keep); err != nil {
			return err
		}
		return rowErr
	case kMatch:
		keep := b.bs.sels[si][:0]
		var rowErr error
		for _, r := range sel {
			b.cx.counters.BuiltinCalls++
			v, err := b.resolveNormRow(st.rhs, f, r)
			if err != nil {
				rowErr = err
				break
			}
			if matchPatID(st.pat, v, f.cols, r) {
				keep = append(keep, r)
			}
		}
		b.bs.sels[si] = keep
		if err := b.run(si+1, f, keep); err != nil {
			return err
		}
		return rowErr
	case kNeg:
		rel := b.ks.negRels[st.negIdx]
		keep := b.bs.sels[si][:0]
		row := b.bs.negIDs[st.negIdx]
		for _, r := range sel {
			// The tuple executor counts the lookup before the nil check;
			// a missing relation still passes every row.
			b.cx.counters.Lookups++
			if rel != nil {
				for i, tm := range st.negCols {
					if tm.reg >= 0 {
						row[i] = f.cols[tm.reg][r]
					}
				}
				if rel.ContainsIDs(row) {
					continue
				}
			}
			keep = append(keep, r)
		}
		b.bs.sels[si] = keep
		return b.run(si+1, f, keep)
	}
	return nil
}

// scan gathers, for every selected input row, the matching candidate
// rows of the step's relation into the scan's output frame, flushing
// it downstream whenever it fills — so emission order stays depth-
// first-identical while probes and gathers run over dense ID columns.
func (b *blockRun) scan(si int, st *kstep, f *bframe, sel []int32) error {
	rel := b.ks.rels[st.scanIdx]
	if rel == nil || rel.Len() == 0 {
		return nil
	}
	bs := b.bs
	out := bs.frames[st.scanIdx]
	out.n = 0
	// Borrow the relation's ID columns once per block. Stable for the
	// whole scan: only the head relation is written during an
	// application, and it is never scanned here (see aliasesHead).
	rcols := bs.rcols[st.scanIdx]
	for c := range rcols {
		rcols[c] = rel.ColumnAt(c)
	}
	flush := func() error {
		if out.n == 0 {
			return nil
		}
		b.cx.counters.Blocks++
		n := out.n
		out.n = 0
		return b.run(si+1, out, bs.ident[:n])
	}
	if st.mask == 0 {
		// Full scan: capture the length once (parity with the tuple
		// executor's snapshot discipline).
		n := rel.Len()
		for _, r := range sel {
			b.cx.counters.Lookups++
			for j := 0; j < n; j++ {
				b.candidate(st, f, r, rcols, rel, int32(j), out)
				if out.n == bs.size {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}
		return flush()
	}
	probe := bs.probes[st.scanIdx]
	for _, r := range sel {
		ok := true
		for i, c := range st.cols {
			switch c.op {
			case kcolProbe:
				probe[i] = f.cols[c.reg][r]
			case kcolBuild:
				// A constructed probe value that was never interned
				// cannot equal any stored value: count the lookup (the
				// other executors probe and find nothing) and move on.
				id, found := term.TryLookupID(buildTermID(c.bld, f.cols, r))
				if !found {
					ok = false
				}
				probe[i] = id
			}
		}
		b.cx.counters.Lookups++
		if !ok {
			continue
		}
		idxs := rel.AppendMatchesID(st.mask, probe, b.ks.idxs[st.scanIdx][:0])
		b.ks.idxs[st.scanIdx] = idxs
		for _, j := range idxs {
			b.candidate(st, f, r, rcols, rel, j, out)
			if out.n == bs.size {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}

// candidate verifies one scan candidate against the non-probe columns
// and, on success, appends its bindings as a new row of out.
func (b *blockRun) candidate(st *kstep, f *bframe, r int32, rcols [][]term.ID, rel *store.Relation, j int32, out *bframe) {
	b.cx.counters.Unifications++
	o := out.n
	// Carry the registers bound before this step into the output row
	// first; column processing below is left to right, so a pattern's
	// probe can read a register an earlier column just bound.
	for reg := 0; reg < st.nbound; reg++ {
		out.cols[reg][o] = f.cols[reg][r]
	}
	for i, c := range st.cols {
		switch c.op {
		case kcolOut:
			out.cols[c.reg][o] = rcols[i][j]
		case kcolChk:
			if out.cols[c.reg][o] != rcols[i][j] {
				return
			}
		case kcolPat:
			if !matchPatID(c.pat, rel.TupleAt(int(j))[i], out.cols, int32(o)) {
				return
			}
			// kcolConst, kcolProbe, kcolBuild: always part of the probe
			// mask, so the candidate arrives pre-verified.
		}
	}
	out.n++
}

// matchPatID is matchPat over an ID frame: patterns reach below the
// column granularity the frame stores, so the candidate side is a
// term; registers hold interned IDs.
func matchPatID(p *kpat, v term.Term, cols [][]term.ID, r int32) bool {
	switch p.kind {
	case patConst:
		return term.Equal(p.lit, v)
	case patProbe:
		return term.Equal(term.InternedTerm(cols[p.reg][r]), v)
	case patOut:
		id, _, ok := term.TryIntern(v)
		if !ok {
			return false // unreachable: candidate values are ground
		}
		cols[p.reg][r] = id
		return true
	case patComp:
		c, ok := v.(term.Comp)
		if !ok || c.Functor != p.functor || len(c.Args) != len(p.args) {
			return false
		}
		for i, ap := range p.args {
			if !matchPatID(ap, c.Args[i], cols, r) {
				return false
			}
		}
		return true
	}
	return false
}

// buildTermID is buildTerm over an ID frame.
func buildTermID(bld *btmpl, cols [][]term.ID, r int32) term.Term {
	if bld.args != nil {
		out := make([]term.Term, len(bld.args))
		for i := range bld.args {
			out[i] = buildTermID(&bld.args[i], cols, r)
		}
		return term.Comp{Functor: bld.functor, Args: out}
	}
	if bld.reg >= 0 {
		return term.InternedTerm(cols[bld.reg][r])
	}
	return bld.lit
}

// evalTestRow evaluates a comparison step for one row — the ID-frame
// twin of kernelRun.evalTest, with the same evaluation order (lhs
// first) so error timing matches.
func (b *blockRun) evalTestRow(st *kstep, f *bframe, r int32) (bool, error) {
	switch st.test {
	case testEq, testNe:
		lid, err := b.resolveNormRowID(st.lhs, f, r)
		if err != nil {
			return false, err
		}
		rid, err := b.resolveNormRowID(st.rhs, f, r)
		if err != nil {
			return false, err
		}
		// Normalized sides are interned, so structural equality is ID
		// equality.
		eq := lid == rid
		if st.test == testEq {
			return eq, nil
		}
		return !eq, nil
	}
	a, err := b.evalArithRow(st.lhs, f, r)
	if err != nil {
		return false, err
	}
	c, err := b.evalArithRow(st.rhs, f, r)
	if err != nil {
		return false, err
	}
	switch st.test {
	case testLt:
		return a < c, nil
	case testLe:
		return a <= c, nil
	case testGt:
		return a > c, nil
	case testGe:
		return a >= c, nil
	}
	return false, nil
}

// resolveNormRowID resolves a template for one row to an interned ID
// with "=" normalization — kernelRun.resolveNorm in ID space.
func (b *blockRun) resolveNormRowID(t tmpl, f *bframe, r int32) (term.ID, error) {
	if t.args != nil {
		v, err := b.evalArithRow(t, f, r)
		if err != nil {
			return 0, err
		}
		return term.Intern(v), nil
	}
	if t.reg >= 0 {
		id := f.cols[t.reg][r]
		v := term.InternedTerm(id)
		if lang.IsArithExpr(v) {
			iv, err := lang.EvalArith(v)
			if err != nil {
				return 0, err
			}
			return term.Intern(iv), nil
		}
		return id, nil
	}
	v, err := lang.NormalizeEqSide(t.lit)
	if err != nil {
		return 0, err
	}
	return term.Intern(v), nil
}

// resolveNormRow is resolveNormRowID returning the term itself — the
// value side of a kMatch step, which the pattern walk consumes
// structurally.
func (b *blockRun) resolveNormRow(t tmpl, f *bframe, r int32) (term.Term, error) {
	if t.args != nil {
		v, err := b.evalArithRow(t, f, r)
		if err != nil {
			return nil, err
		}
		return v, nil
	}
	if t.reg >= 0 {
		return lang.NormalizeEqSide(term.InternedTerm(f.cols[t.reg][r]))
	}
	return lang.NormalizeEqSide(t.lit)
}

// evalArithRow evaluates a template as an arithmetic expression for
// one row — kernelRun.evalArith over an ID frame.
func (b *blockRun) evalArithRow(t tmpl, f *bframe, r int32) (term.Int, error) {
	if t.args == nil {
		if t.reg >= 0 {
			return lang.EvalArith(term.InternedTerm(f.cols[t.reg][r]))
		}
		return lang.EvalArith(t.lit)
	}
	a, err := b.evalArithRow(t.args[0], f, r)
	if err != nil {
		return 0, err
	}
	if len(t.args) == 1 {
		return lang.ApplyArith1(t.functor, a)
	}
	c, err := b.evalArithRow(t.args[1], f, r)
	if err != nil {
		return 0, err
	}
	return lang.ApplyArith2(t.functor, a, c)
}

// headID materializes head column i for one row.
func (b *blockRun) headID(i int, f *bframe, r int32) term.ID {
	c := &b.cr.head[i]
	switch c.op {
	case kcolProbe:
		return f.cols[c.reg][r]
	case kcolBuild:
		// Constructed head terms enter the store, so interning them is
		// not probe-side waste.
		return term.Intern(buildTermID(c.bld, f.cols, r))
	default: // kcolConst
		return b.bs.headConst[i]
	}
}

// emit inserts (direct mode) or buffers (frozen mode) the selected
// rows' head tuples, in row order — the block twin of kernelRun.emit,
// with identical dedup, counter, and abort semantics per row.
func (b *blockRun) emit(f *bframe, sel []int32) error {
	cx, bs := b.cx, b.bs
	if cx.buf != nil {
		// Frozen mode: dedup against the stable head snapshot, buffer
		// the rest. InsertIDs copies the row values, so the reusable
		// scratch row never aliases the buffer.
		row := bs.headRow
		for _, r := range sel {
			for i := range bs.headRow {
				row[i] = b.headID(i, f, r)
			}
			if b.head.ContainsIDs(row) {
				continue
			}
			added, err := cx.buf.InsertIDs(row)
			if err != nil {
				return err
			}
			if !added {
				continue
			}
			if err := cx.recordBuffered(); err != nil {
				return err
			}
		}
		return nil
	}
	// Direct mode: materialize the block's head rows columnar and
	// bulk-insert; onNew fires per genuinely new row, in row order, so
	// TuplesDerived accounting and delta collection match the tuple
	// executor's per-row emit exactly.
	m := 0
	for _, r := range sel {
		for i := range bs.headIDs {
			bs.headIDs[i][m] = b.headID(i, f, r)
		}
		m++
	}
	_, err := b.head.InsertRows(bs.headIDs, m, func(idx int) error {
		return cx.recordInserted(b.headTag, b.head.TupleAt(idx), b.collect)
	})
	return err
}
