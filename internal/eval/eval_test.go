package eval

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ldl/internal/lang"
	"ldl/internal/parser"
	"ldl/internal/store"
	"ldl/internal/term"
)

// run evaluates src with the given method and returns the engine.
func run(t *testing.T, src string, m Method) *Engine {
	t.Helper()
	e, err := tryRun(src, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func tryRun(src string, m Method, opts Options) (*Engine, error) {
	prog, _, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	db := store.NewDatabase()
	if err := db.LoadFacts(prog); err != nil {
		return nil, err
	}
	opts.Method = m
	e, err := New(prog, db, opts)
	if err != nil {
		return nil, err
	}
	return e, e.Run()
}

func answers(t *testing.T, e *Engine, goal string) string {
	t.Helper()
	l, err := parser.ParseLiteral(goal)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := e.Answers(lang.Query{Goal: l})
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]string, len(ts))
	for i, tt := range ts {
		parts[i] = tt.String()
	}
	return strings.Join(parts, " ")
}

const tcSrc = `
e(1, 2). e(2, 3). e(3, 4).
tc(X, Y) <- e(X, Y).
tc(X, Y) <- e(X, Z), tc(Z, Y).
`

func TestTransitiveClosureBothMethods(t *testing.T) {
	for _, m := range []Method{Naive, SemiNaive} {
		e := run(t, tcSrc, m)
		if got := answers(t, e, "tc(1, Y)"); got != "(1, 2) (1, 3) (1, 4)" {
			t.Errorf("%v: tc(1,Y) = %s", m, got)
		}
		if got := answers(t, e, "tc(X, Y)"); !strings.Contains(got, "(2, 4)") {
			t.Errorf("%v: full tc = %s", m, got)
		}
		rel := e.RelationFor("tc/2")
		if rel.Len() != 6 {
			t.Errorf("%v: |tc| = %d, want 6", m, rel.Len())
		}
	}
}

func TestSemiNaiveDoesLessWork(t *testing.T) {
	// Long chain: naive re-derives everything each round.
	var b strings.Builder
	for i := 0; i < 30; i++ {
		b.WriteString("e(")
		b.WriteString(term.Int(int64(i)).String())
		b.WriteString(", ")
		b.WriteString(term.Int(int64(i + 1)).String())
		b.WriteString(").\n")
	}
	b.WriteString("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n")
	en, err := tryRun(b.String(), Naive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	es, err := tryRun(b.String(), SemiNaive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if en.RelationFor("tc/2").Len() != es.RelationFor("tc/2").Len() {
		t.Fatalf("methods disagree: %d vs %d", en.RelationFor("tc/2").Len(), es.RelationFor("tc/2").Len())
	}
	if es.Counters.Unifications >= en.Counters.Unifications {
		t.Errorf("semi-naive (%d unifications) not cheaper than naive (%d)",
			es.Counters.Unifications, en.Counters.Unifications)
	}
}

func TestSameGeneration(t *testing.T) {
	src := `
up(a, p1). up(b, p1). up(p1, g).
up(c, p2). up(p2, g).
flat(g, g).
sg(X, Y) <- flat(X, Y).
sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
dn(Y, X) <- up(X, Y).
`
	for _, m := range []Method{Naive, SemiNaive} {
		e := run(t, src, m)
		got := answers(t, e, "sg(a, Y)")
		// a's parent p1 is same-gen with p1, p2 => a same-gen with a, b, c.
		for _, want := range []string{"(a, a)", "(a, b)", "(a, c)"} {
			if !strings.Contains(got, want) {
				t.Errorf("%v: sg(a,Y) = %s missing %s", m, got, want)
			}
		}
	}
}

func TestMutualRecursionEvenOdd(t *testing.T) {
	src := `
zero(0).
s(0, 1). s(1, 2). s(2, 3). s(3, 4). s(4, 5).
even(X) <- zero(X).
even(X) <- s(Y, X), odd(Y).
odd(X) <- s(Y, X), even(Y).
`
	for _, m := range []Method{Naive, SemiNaive} {
		e := run(t, src, m)
		if got := answers(t, e, "even(X)"); got != "(0) (2) (4)" {
			t.Errorf("%v: even = %s", m, got)
		}
		if got := answers(t, e, "odd(X)"); got != "(1) (3) (5)" {
			t.Errorf("%v: odd = %s", m, got)
		}
	}
}

func TestBuiltinsInRules(t *testing.T) {
	src := `
n(1). n(2). n(3). n(4).
big(X) <- n(X), X > 2.
double(X, Y) <- n(X), Y = X * 2.
between(X) <- n(X), X >= 2, X =< 3.
notTwo(X) <- n(X), X \= 2.
`
	e := run(t, src, SemiNaive)
	if got := answers(t, e, "big(X)"); got != "(3) (4)" {
		t.Errorf("big = %s", got)
	}
	if got := answers(t, e, "double(X, Y)"); got != "(1, 2) (2, 4) (3, 6) (4, 8)" {
		t.Errorf("double = %s", got)
	}
	if got := answers(t, e, "between(X)"); got != "(2) (3)" {
		t.Errorf("between = %s", got)
	}
	if got := answers(t, e, "notTwo(X)"); got != "(1) (3) (4)" {
		t.Errorf("notTwo = %s", got)
	}
}

func TestBuiltinDeferral(t *testing.T) {
	// The builtin appears before its variables are bound; the engine
	// must defer it rather than fail (run-time reordering as safety
	// net — the optimizer normally orders goals so this never happens).
	src := `
n(1). n(2). n(3).
p(X, Y) <- Y = X + 1, n(X).
q(X) <- X > 1, n(X).
`
	e := run(t, src, SemiNaive)
	if got := answers(t, e, "p(X, Y)"); got != "(1, 2) (2, 3) (3, 4)" {
		t.Errorf("p = %s", got)
	}
	if got := answers(t, e, "q(X)"); got != "(2) (3)" {
		t.Errorf("q = %s", got)
	}
}

func TestBuiltinNeverEvaluable(t *testing.T) {
	src := `
n(1).
p(X, Y) <- n(X), Y > X.
`
	_, err := tryRun(src, SemiNaive, Options{})
	if err == nil || !strings.Contains(err.Error(), "never became evaluable") {
		t.Errorf("unsafe rule error = %v", err)
	}
}

func TestUnboundHeadVariable(t *testing.T) {
	src := `
n(1).
p(X, W) <- n(X).
`
	_, err := tryRun(src, SemiNaive, Options{})
	if err == nil || !strings.Contains(err.Error(), "unbound head variable") {
		t.Errorf("unbound head error = %v", err)
	}
}

func TestStratifiedNegation(t *testing.T) {
	src := `
node(1). node(2). node(3). node(4).
e(1, 2). e(2, 3).
reach(1).
reach(Y) <- reach(X), e(X, Y).
unreach(X) <- node(X), not reach(X).
`
	for _, m := range []Method{Naive, SemiNaive} {
		e := run(t, src, m)
		if got := answers(t, e, "unreach(X)"); got != "(4)" {
			t.Errorf("%v: unreach = %s", m, got)
		}
	}
}

func TestNegationDeferral(t *testing.T) {
	src := `
node(1). node(2).
bad(1).
ok(X) <- not bad(X), node(X).
`
	e := run(t, src, SemiNaive)
	if got := answers(t, e, "ok(X)"); got != "(2)" {
		t.Errorf("ok = %s", got)
	}
}

func TestComplexTermsAndLists(t *testing.T) {
	src := `
part(bike, frame). part(bike, wheel).
part(wheel, spoke). part(wheel, rim).
sub(X, Y) <- part(X, Y).
sub(X, Y) <- part(X, Z), sub(Z, Y).
pathTo(X, cons(X, nil)) <- part(bike, X).
pathTo(Y, cons(Y, P)) <- pathTo(X, P), part(X, Y).
`
	e := run(t, src, SemiNaive)
	if got := answers(t, e, "sub(bike, X)"); got != "(bike, frame) (bike, rim) (bike, spoke) (bike, wheel)" {
		t.Errorf("sub = %s", got)
	}
	got := answers(t, e, "pathTo(spoke, P)")
	if !strings.Contains(got, "cons(spoke, cons(wheel, nil))") {
		t.Errorf("pathTo(spoke) = %s", got)
	}
}

func TestListAppend(t *testing.T) {
	// append with structural lists, fully bound first argument set.
	src := `
lst([1, 2]). lst([]).
app([], [9], [9]).
doubled(L2) <- lst(L), app(L, L, L2).
app2(X) <- app([], [9], X).
`
	e := run(t, src, SemiNaive)
	if got := answers(t, e, "app2(X)"); got != "([9])" {
		t.Errorf("app2 = %s", got)
	}
	_ = e
}

func TestRunawayGuard(t *testing.T) {
	// counter generates unboundedly: the tuple budget must trip.
	src := `
n(0).
n(Y) <- n(X), Y = X + 1.
`
	_, err := tryRun(src, SemiNaive, Options{MaxTuples: 500})
	if !errors.Is(err, ErrRunaway) {
		t.Errorf("want ErrRunaway, got %v", err)
	}
	_, err = tryRun(src, Naive, Options{MaxTuples: 500})
	if !errors.Is(err, ErrRunaway) {
		t.Errorf("naive: want ErrRunaway, got %v", err)
	}
}

func TestIterationGuard(t *testing.T) {
	src := `
n(0).
n(Y) <- n(X), Y = X + 1.
`
	_, err := tryRun(src, SemiNaive, Options{MaxIterations: 5})
	if !errors.Is(err, ErrRunaway) {
		t.Errorf("want ErrRunaway, got %v", err)
	}
}

func TestEmptyAndMissingRelations(t *testing.T) {
	src := `
p(X) <- q(X).
r(X) <- p(X), missing(X).
`
	e := run(t, src, SemiNaive)
	if got := answers(t, e, "p(X)"); got != "" {
		t.Errorf("p = %q", got)
	}
	if got := answers(t, e, "r(X)"); got != "" {
		t.Errorf("r = %q", got)
	}
	if ts, err := e.Answers(lang.Query{Goal: lang.Lit("nosuch", term.Var{Name: "X"})}); err != nil || ts != nil {
		t.Errorf("nosuch = %v %v", ts, err)
	}
}

func TestAnswersGroundQuery(t *testing.T) {
	e := run(t, tcSrc, SemiNaive)
	if got := answers(t, e, "tc(1, 4)"); got != "(1, 4)" {
		t.Errorf("ground hit = %s", got)
	}
	if got := answers(t, e, "tc(4, 1)"); got != "" {
		t.Errorf("ground miss = %s", got)
	}
	subs, err := e.AnswerSubsts(lang.Query{Goal: lang.Lit("tc", term.Int(1), term.Var{Name: "Y"})})
	if err != nil || len(subs) != 3 {
		t.Fatalf("AnswerSubsts = %v %v", subs, err)
	}
	if got := subs[0].Resolve(term.Var{Name: "Y"}); !term.Equal(got, term.Int(2)) {
		t.Errorf("first Y = %v", got)
	}
}

func TestRunIdempotent(t *testing.T) {
	e := run(t, tcSrc, SemiNaive)
	n := e.Counters.TuplesDerived
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Counters.TuplesDerived != n {
		t.Error("second Run redid work")
	}
}

func TestNonStratifiableRejected(t *testing.T) {
	prog, _, err := parser.ParseProgram(`win(X) <- move(X, Y), not win(Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(prog, store.NewDatabase(), Options{}); err == nil {
		t.Error("non-stratifiable program accepted")
	}
}

// randomGraphSrc builds a random edge relation and the TC program.
func randomGraphSrc(r *rand.Rand, n, edges int) string {
	var b strings.Builder
	seen := map[[2]int]bool{}
	for i := 0; i < edges; i++ {
		a, c := r.Intn(n), r.Intn(n)
		if seen[[2]int{a, c}] {
			continue
		}
		seen[[2]int{a, c}] = true
		b.WriteString("e(")
		b.WriteString(term.Int(int64(a)).String())
		b.WriteString(", ")
		b.WriteString(term.Int(int64(c)).String())
		b.WriteString(").\n")
	}
	b.WriteString("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- tc(X, Z), e(Z, Y).\n")
	return b.String()
}

func TestQuickNaiveEqualsSemiNaive(t *testing.T) {
	// Property: both methods compute the same fixpoint on random graphs
	// (including cyclic ones).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomGraphSrc(r, 2+r.Intn(8), 1+r.Intn(20))
		en, err := tryRun(src, Naive, Options{})
		if err != nil {
			return false
		}
		es, err := tryRun(src, SemiNaive, Options{})
		if err != nil {
			return false
		}
		a, b := en.RelationFor("tc/2").Sorted(), es.RelationFor("tc/2").Sorted()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Key() != b[i].Key() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickTCMatchesFloydWarshall(t *testing.T) {
	// Property: the engine's transitive closure agrees with an
	// independent Floyd-Warshall computation.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(7)
		var reach [10][10]bool
		var b strings.Builder
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r.Intn(4) == 0 {
					reach[i][j] = true
					b.WriteString("e(")
					b.WriteString(term.Int(int64(i)).String())
					b.WriteString(", ")
					b.WriteString(term.Int(int64(j)).String())
					b.WriteString(").\n")
				}
			}
		}
		b.WriteString("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n")
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		e, err := tryRun(b.String(), SemiNaive, Options{})
		if err != nil {
			return false
		}
		rel := e.RelationFor("tc/2")
		count := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if reach[i][j] {
					count++
					if !rel.Contains(store.Tuple{term.Int(int64(i)), term.Int(int64(j))}) {
						return false
					}
				}
			}
		}
		return rel.Len() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
