package eval

import (
	"fmt"
	"strings"

	"ldl/internal/lang"
	"ldl/internal/store"
	"ldl/internal/term"
)

// TopDown is a memoizing (tabled) top-down evaluator: it answers a
// query by goal-directed resolution, creating one answer table per
// distinct call pattern and iterating the tables to a mutual fixpoint.
// It computes only tuples relevant to the query — the literal
// realization of the pipelined (triangle-node) execution that the magic
// rewrite emulates bottom-up — and therefore terminates on some
// function-symbol programs whose bottom-up fixpoint diverges (e.g. a
// list-length rule called with the list bound).
//
// The engine package's bottom-up evaluator and TopDown are independent
// implementations of the same semantics; the differential tests lean on
// that.
type TopDown struct {
	Prog     *lang.Program
	DB       *store.Database
	Counters Counters

	opts     Options
	tables   map[string]*tdTable
	order    []*tdTable      // creation order, for deterministic iteration
	negCache map[string]bool // ground negated-call results (stratified)
}

type tdTable struct {
	key     string
	pred    string
	arity   int
	pattern []term.Term // canonicalized call arguments
	answers *store.Relation
}

// NewTopDown prepares a tabled evaluator over prog and db.
func NewTopDown(prog *lang.Program, db *store.Database, opts Options) *TopDown {
	opts.norm()
	return &TopDown{Prog: prog, DB: db, opts: opts, tables: map[string]*tdTable{}, negCache: map[string]bool{}}
}

// canonicalCall renders a call pattern key: resolved arguments with
// variables normalized by first occurrence. Distinct variables map to
// $0, $1, ... — names the parser cannot produce, so there is no
// collision with program constants.
func canonicalCall(pred string, args []term.Term) (string, []term.Term) {
	names := map[string]int{}
	var normalize func(t term.Term) term.Term
	normalize = func(t term.Term) term.Term {
		switch x := t.(type) {
		case term.Var:
			i, ok := names[x.Name]
			if !ok {
				i = len(names)
				names[x.Name] = i
			}
			return term.Var{Name: fmt.Sprintf("$%d", i)}
		case term.Comp:
			out := make([]term.Term, len(x.Args))
			for i, a := range x.Args {
				out[i] = normalize(a)
			}
			return term.Comp{Functor: x.Functor, Args: out}
		default:
			return t
		}
	}
	norm := make([]term.Term, len(args))
	var b strings.Builder
	b.WriteString(pred)
	b.WriteByte('(')
	for i, a := range args {
		norm[i] = normalize(a)
		b.WriteString(norm[i].String())
		b.WriteByte(',')
	}
	b.WriteByte(')')
	return b.String(), norm
}

// tableFor returns (creating on demand) the table for a call.
func (td *TopDown) tableFor(pred string, arity int, args []term.Term) *tdTable {
	key, pattern := canonicalCall(pred, args)
	if t, ok := td.tables[key]; ok {
		return t
	}
	t := &tdTable{
		key:     key,
		pred:    pred,
		arity:   arity,
		pattern: pattern,
		answers: store.NewRelation(key, arity),
	}
	td.tables[key] = t
	td.order = append(td.order, t)
	return t
}

// Query answers the goal, iterating all call tables to a fixpoint.
func (td *TopDown) Query(q lang.Query) ([]store.Tuple, error) {
	if !td.Prog.IsDerived(q.Goal.Tag()) {
		// Base-relation query: filter the stored tuples directly.
		out := store.NewRelation("ans", q.Goal.Arity())
		rel := td.DB.Relation(q.Goal.Tag())
		if rel == nil {
			return nil, nil
		}
		for _, t := range rel.Tuples() {
			if _, ok := term.UnifyAll(q.Goal.Args, []term.Term(t), term.NewSubst()); ok {
				out.MustInsert(t)
			}
		}
		return out.Sorted(), nil
	}
	seed := td.tableFor(q.Goal.Pred, q.Goal.Arity(), q.Goal.Args)
	for round := 0; ; round++ {
		if round > td.opts.MaxIterations {
			return nil, fmt.Errorf("%w: top-down tables exceeded %d rounds", ErrRunaway, td.opts.MaxIterations)
		}
		if err := td.opts.Gov.AddIteration(); err != nil {
			return nil, err
		}
		td.Counters.Iterations++
		changed := false
		// New tables may appear while iterating; the slice grows.
		for i := 0; i < len(td.order); i++ {
			n, err := td.evalTable(td.order[i])
			if err != nil {
				return nil, err
			}
			if n {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := store.NewRelation("ans", q.Goal.Arity())
	for _, t := range seed.answers.Tuples() {
		if _, ok := term.UnifyAll(q.Goal.Args, []term.Term(t), term.NewSubst()); ok {
			out.MustInsert(t)
		}
	}
	return out.Sorted(), nil
}

// evalTable re-derives one call table from the current state of every
// table it depends on; returns whether new answers appeared.
func (td *TopDown) evalTable(t *tdTable) (bool, error) {
	changed := false
	tag := fmt.Sprintf("%s/%d", t.pred, t.arity)
	// A derived predicate can also carry base facts; match them against
	// the call pattern directly.
	if rel := td.DB.Relation(tag); rel != nil {
		for _, tup := range rel.Tuples() {
			td.Counters.Unifications++
			if _, ok := term.UnifyAll(t.pattern, []term.Term(tup), term.NewSubst()); !ok {
				continue
			}
			added, err := t.answers.Insert(tup)
			if err != nil {
				return changed, err
			}
			if added {
				changed = true
				td.Counters.TuplesDerived++
				if err := td.opts.Gov.AddTuples(1); err != nil {
					return changed, err
				}
			}
		}
	}
	for ri, r := range td.Prog.RulesFor(tag) {
		rr := r.Rename(ri + 1)
		s, ok := term.UnifyAll(rr.Head.Args, t.pattern, term.NewSubst())
		if !ok {
			continue
		}
		emit := func(s2 term.Subst) error {
			args := s2.ResolveAll(rr.Head.Args)
			for _, a := range args {
				if !term.Ground(a) {
					return fmt.Errorf("eval: top-down call %s produced non-ground answer — unbound head variable (unsafe call pattern)", t.key)
				}
			}
			added, err := t.answers.Insert(store.Tuple(args))
			if err != nil {
				return err
			}
			if added {
				changed = true
				td.Counters.TuplesDerived++
				if td.Counters.TuplesDerived > td.opts.MaxTuples {
					return fmt.Errorf("%w: more than %d tuples", ErrRunaway, td.opts.MaxTuples)
				}
				if err := td.opts.Gov.AddTuples(1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := td.solveBody(rr.Body, 0, s, nil, emit); err != nil {
			return changed, err
		}
	}
	return changed, nil
}

// solveBody resolves body[i:] under s, deferring builtins/negation
// until evaluable, creating subcall tables for derived literals.
func (td *TopDown) solveBody(body []lang.Literal, i int, s term.Subst, pending []lang.Literal, emit func(term.Subst) error) error {
	// Resolution can loop through huge candidate sets without tabling
	// anything new; enforce the deadline here as well.
	if err := td.opts.Gov.Tick(); err != nil {
		return err
	}
	for pi := 0; pi < len(pending); pi++ {
		l := pending[pi]
		ok, done, err := td.tryDeferred(l, s)
		if err != nil {
			return err
		}
		if !done {
			continue
		}
		if !ok {
			return nil
		}
		rest := append(append([]lang.Literal{}, pending[:pi]...), pending[pi+1:]...)
		return td.solveBody(body, i, s, rest, emit)
	}
	if i >= len(body) {
		if len(pending) > 0 {
			return fmt.Errorf("eval: top-down goals %v never became evaluable (unsafe rule ordering)", pending)
		}
		return emit(s)
	}
	l := body[i]
	if lang.IsBuiltin(l.Pred) || l.Neg {
		ok, done, err := td.tryDeferred(l, s)
		if err != nil {
			return err
		}
		if done {
			if !ok {
				return nil
			}
			return td.solveBody(body, i+1, s, pending, emit)
		}
		return td.solveBody(body, i+1, s, append(pending, l), emit)
	}
	resolved := s.ResolveAll(l.Args)
	var candidates []store.Tuple
	if td.Prog.IsDerived(l.Tag()) {
		sub := td.tableFor(l.Pred, l.Arity(), resolved)
		candidates = sub.answers.Tuples()
	} else {
		rel := td.DB.Relation(l.Tag())
		if rel == nil {
			return nil
		}
		var mask uint32
		probe := make(store.Tuple, len(resolved))
		for ai, a := range resolved {
			if term.Ground(a) {
				mask |= 1 << uint(ai)
				probe[ai] = a
			}
		}
		td.Counters.Lookups++
		candidates = rel.Lookup(mask, probe)
	}
	for _, tup := range candidates {
		td.Counters.Unifications++
		s2, ok := term.UnifyAll(resolved, []term.Term(tup), s.Clone())
		if !ok {
			continue
		}
		if err := td.solveBody(body, i+1, s2, pending, emit); err != nil {
			return err
		}
	}
	return nil
}

// tryDeferred mirrors the bottom-up engine's builtin/negation handling.
// Negated derived goals read the corresponding all-free table (safe
// because stratification was checked when the program was analyzed by
// the caller; TopDown itself assumes a stratifiable program).
func (td *TopDown) tryDeferred(l lang.Literal, s term.Subst) (ok, done bool, err error) {
	if l.Neg {
		resolved := s.ResolveAll(l.Args)
		for _, a := range resolved {
			if !term.Ground(a) {
				return false, false, nil
			}
		}
		td.Counters.Lookups++
		if td.Prog.IsDerived(l.Tag()) {
			// A negated derived goal must be answered from a COMPLETED
			// table — checking a half-filled one would let premature
			// negations leak answers. Stratification guarantees the
			// negated predicate sits strictly below the current one, so
			// a nested evaluation terminates; results are cached.
			key, _ := canonicalCall(l.Pred, resolved)
			if res, cached := td.negCache[key]; cached {
				return res, true, nil
			}
			sub := NewTopDown(td.Prog, td.DB, td.opts)
			ts, err := sub.Query(lang.Query{Goal: lang.Literal{Pred: l.Pred, Args: resolved}})
			td.Counters.TuplesDerived += sub.Counters.TuplesDerived
			td.Counters.Unifications += sub.Counters.Unifications
			td.Counters.Lookups += sub.Counters.Lookups
			if err != nil {
				return false, false, err
			}
			res := len(ts) == 0
			td.negCache[key] = res
			return res, true, nil
		}
		rel := td.DB.Relation(l.Tag())
		if rel == nil {
			return true, true, nil
		}
		return !rel.Contains(store.Tuple(resolved)), true, nil
	}
	bound := map[string]bool{}
	for _, v := range l.Vars(nil) {
		if term.Ground(s.Resolve(v)) {
			bound[v.Name] = true
		}
	}
	if !lang.BuiltinEC(l, bound) {
		return false, false, nil
	}
	td.Counters.BuiltinCalls++
	ok, err = lang.EvalBuiltin(l, s)
	return ok, true, err
}

// Tables reports how many call tables were created — a measure of how
// goal-directed the evaluation stayed.
func (td *TopDown) Tables() int { return len(td.tables) }
