package eval

// The parallel stratified fixpoint. Two levels of parallelism, both
// bounded by Options.Parallel workers:
//
//  1. Clique level: the follows order on recursive cliques is a partial
//     order (the condensation DAG of the predicate dependency graph).
//     Cliques whose transitive dependencies are disjoint — independent
//     strata — evaluate concurrently; a clique starts only when every
//     clique it reads from has completed, so every relation a running
//     clique reads is immutable.
//
//  2. Rule level: within one clique, each fixpoint round fans its rule
//     applications ("variants": rule × delta occurrence) across the
//     pool. Workers read a frozen view of all relations and buffer
//     candidate head tuples per variant; a barrier then merges the
//     buffers — in variant order, so the engine is deterministic for a
//     fixed worker count — into the head relations and the next deltas.
//
// Both levels preserve the least-fixpoint semantics exactly: within a
// clique only positive recursion occurs (stratification pushes negation
// between cliques), so evaluation is monotone and the frozen-read,
// merge-later schedule converges to the same fixpoint as the sequential
// engine's eager-visibility schedule — possibly in a different number
// of rounds, but with identical final relations and identical Answers.

import (
	"fmt"
	"sync"

	"ldl/internal/depgraph"
	"ldl/internal/lang"
	"ldl/internal/store"
)

// variant is one unit of parallel work inside a fixpoint round: a rule
// application with a designated delta occurrence (-1 = read full
// relations everywhere). cr is the rule's compiled join kernel (nil =
// generic interpreter); the compiledRule is immutable, so every delta
// variant and every worker shares one program, each with its own
// kernelState.
type variant struct {
	rule     lang.Rule
	cr       *compiledRule
	deltaOcc int
}

// runParallel schedules all cliques over the worker pool, respecting
// the follows partial order.
func (e *Engine) runParallel() error {
	cliques := e.Graph.TopoCliques()
	deps := e.Graph.CliqueDeps()
	done := make([]chan struct{}, len(cliques))
	for i := range done {
		done[i] = make(chan struct{})
	}
	// The semaphore bounds cliques evaluated at once; within a clique,
	// runVariants bounds its own fan-out, so worst-case concurrency is
	// workers×workers goroutines but only ~GOMAXPROCS run at a time.
	sem := make(chan struct{}, e.opts.Parallel)
	var wg sync.WaitGroup
	for i, c := range cliques {
		wg.Add(1)
		go func(i int, c *depgraph.Clique) {
			defer wg.Done()
			defer close(done[i])
			for _, d := range deps[i] {
				<-done[d]
			}
			if e.aborted.Load() || len(c.Rules) == 0 {
				return
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := e.evalCliqueParallel(c); err != nil {
				e.mu.Lock()
				if e.runErr == nil {
					e.runErr = err
				}
				e.mu.Unlock()
				e.aborted.Store(true)
			}
		}(i, c)
	}
	wg.Wait()
	return e.runErr
}

// evalCliqueParallel is evalClique with the per-round rule fan-out.
func (e *Engine) evalCliqueParallel(c *depgraph.Clique) error {
	rules, method := e.cliqueRules(c)
	crs := e.compileRules(c, rules)
	// Kernel-state caches, one per worker slot, hoisted to clique scope:
	// a fixpoint runs many rounds over the same compiled rules, and
	// recreating the states every round would re-allocate every register
	// frame, probe buffer, match-index buffer and vectorized block state
	// each iteration. Worker w of every round uses slot w exclusively
	// (and the rounds themselves are sequential), so the states are
	// never shared between goroutines that run concurrently.
	ksp := make([]map[*compiledRule]*kernelState, e.opts.Parallel)
	for i := range ksp {
		ksp[i] = map[*compiledRule]*kernelState{}
	}
	if !c.Recursive {
		vs := make([]variant, len(rules))
		for i, r := range rules {
			vs[i] = variant{rule: r, cr: crs[i], deltaOcc: -1}
		}
		_, err := e.runRound(vs, nil, nil, ksp)
		return err
	}
	deltas := e.newDeltas(c)
	seed := make([]variant, len(rules))
	for i, r := range rules {
		seed[i] = variant{rule: r, cr: crs[i], deltaOcc: -1}
	}
	if _, err := e.runRound(seed, nil, deltas, ksp); err != nil {
		return err
	}
	for iter := 0; ; iter++ {
		if iter >= e.opts.MaxIterations {
			return fmt.Errorf("%w: clique %v exceeded %d iterations", ErrRunaway, c.Preds, e.opts.MaxIterations)
		}
		if err := e.opts.Gov.AddIteration(); err != nil {
			return err
		}
		e.mu.Lock()
		e.Counters.Iterations++
		e.mu.Unlock()
		empty := true
		for _, d := range deltas {
			if d.Len() > 0 {
				empty = false
			}
		}
		if empty {
			return nil
		}
		var vs []variant
		for i, r := range rules {
			switch method {
			case Naive:
				vs = append(vs, variant{rule: r, cr: crs[i], deltaOcc: -1})
			case SemiNaive:
				for bi, l := range r.Body {
					if l.Neg || lang.IsBuiltin(l.Pred) || !c.Contains(l.Tag()) {
						continue
					}
					vs = append(vs, variant{rule: r, cr: crs[i], deltaOcc: bi})
				}
			}
		}
		next := make(map[string]*store.Relation, len(deltas))
		for p, d := range deltas {
			next[p] = store.NewRelationSized(p+"Δ", d.Arity, e.opts.SizeHints[p]/2)
		}
		if _, err := e.runRound(vs, deltas, next, ksp); err != nil {
			return err
		}
		deltas = next
	}
}

// runRound evaluates every variant against the frozen current state,
// then merges the per-variant buffers into the head relations (and
// newDeltas, when non-nil) in variant order. It returns the number of
// genuinely new tuples.
func (e *Engine) runRound(vs []variant, deltas, newDeltas map[string]*store.Relation, ksp []map[*compiledRule]*kernelState) (int, error) {
	// A single-variant round has nothing to fan out; run it in direct
	// mode — immediate head inserts, no buffer, no merge — exactly like
	// the sequential engine, with counters kept round-local and merged
	// under the lock. Chain-shaped recursions hit this path every round,
	// and it keeps them at sequential speed instead of paying the
	// buffer-and-merge tax for zero parallelism.
	if len(vs) == 1 {
		var local Counters
		cx := &evalCtx{e: e, counters: &local, kstates: ksp[0]}
		var collect func(string, store.Tuple)
		if newDeltas != nil {
			collect = func(tag string, t store.Tuple) {
				head := e.derived[tag]
				newDeltas[tag].InsertFrom(head, head.Len()-1)
			}
		}
		err := cx.applyRule(vs[0].rule, vs[0].cr, vs[0].deltaOcc, deltas, collect)
		e.mu.Lock()
		e.Counters.add(&local)
		e.mu.Unlock()
		return local.TuplesDerived, err
	}
	bufs := make([]*store.Relation, len(vs))
	errs := make([]error, len(vs))
	workers := e.opts.Parallel
	if workers > len(vs) {
		workers = len(vs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(kstates map[*compiledRule]*kernelState) {
			defer wg.Done()
			// Worker-local counters keep the hot loop free of shared
			// writes; merged under the engine lock at the end. The
			// kernel-state cache lives at clique scope (slot w of ksp),
			// so repeated variants of the same compiled rule reuse
			// their register frames and probe buffers across jobs AND
			// across rounds (a worker runs one job at a time and rounds
			// are sequential, so the states are never shared).
			var local Counters
			for i := range jobs {
				if e.aborted.Load() {
					continue
				}
				v := vs[i]
				buf := store.NewRelation(v.rule.Head.Tag()+"◦", v.rule.Head.Arity())
				cx := &evalCtx{e: e, counters: &local, buf: buf, kstates: kstates}
				if err := cx.applyRule(v.rule, v.cr, v.deltaOcc, deltas, nil); err != nil {
					errs[i] = err
					e.aborted.Store(true)
					continue
				}
				bufs[i] = buf
			}
			e.mu.Lock()
			e.Counters.add(&local)
			e.mu.Unlock()
		}(ksp[w])
	}
	for i := range vs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	// Surface the first error in variant order, for determinism.
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	if e.aborted.Load() {
		// Another clique failed; report nothing here, the scheduler
		// already captured its error.
		return 0, nil
	}
	// Merge barrier: single-threaded for this clique; relations written
	// here are read by no other goroutine (dependency discipline).
	added := 0
	for i, buf := range bufs {
		if buf == nil {
			continue
		}
		tag := vs[i].rule.Head.Tag()
		head := e.derived[tag]
		for ri := 0; ri < buf.Len(); ri++ {
			// InsertFrom reuses the buffer's interned IDs and row hash:
			// the merge costs one probe and a few appends per tuple, never
			// a re-hash or a second intern-table visit.
			ok, err := head.InsertFrom(buf, ri)
			if err != nil {
				return added, err
			}
			if !ok {
				continue
			}
			added++
			if newDeltas != nil {
				newDeltas[tag].InsertFrom(head, head.Len()-1)
			}
		}
	}
	over := int(e.derivedN.Add(int64(added))) > e.opts.MaxTuples
	e.mu.Lock()
	e.Counters.TuplesDerived += added
	e.mu.Unlock()
	if over {
		return added, fmt.Errorf("%w: more than %d tuples", ErrRunaway, e.opts.MaxTuples)
	}
	return added, nil
}
