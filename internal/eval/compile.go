package eval

// Rule compilation to positional join kernels. The paper's premise
// (§4, §7) is that rules are *compiled* into relational operations in
// the order the optimizer chose; this file realizes that for the
// fixpoint engine. compileRule turns a rule body into a join program —
// a flat array of steps whose column behavior is resolved once, at
// compile time:
//
//   - each positive literal becomes a scan step whose columns are
//     classified as constants (index probe), already-bound variables
//     (index probe from a register), first occurrences (write a
//     register), or repeats within the literal (compare a register);
//   - each builtin becomes a test or an assignment placed at the
//     earliest point its arguments are instantiated — the effective
//     computability (EC) schedule of §8.1, resolved statically because
//     instantiation depends only on literal order, never on data;
//   - each negated literal becomes an anti-join membership test, again
//     placed at its EC point.
//
// Execution runs over a flat []term.Term register frame reused across
// the whole rule application: no substitution maps, no Clone, no
// ResolveAll, reused probe and match-index buffers, and one reusable
// head buffer that only pays a copy when a derived tuple is genuinely
// new. Complex terms compile too: a compound argument with fresh
// variables becomes a decomposition pattern (kcolPat / kMatch), a
// compound whose variables are all bound becomes a construction
// template (kcolBuild) in probes and head positions. Rules the
// compiler still cannot prove safe for this representation — an "="
// needing bidirectional unification, a head variable no body literal
// binds, goals whose EC point never arrives — return nil and fall
// back to the generic joinBody interpreter, preserving its answers
// and its error timing exactly.

import (
	"ldl/internal/lang"
	"ldl/internal/store"
	"ldl/internal/term"
)

// kcolOp classifies one column of a scan step (or head template).
type kcolOp uint8

const (
	// kcolConst: the column must equal a compile-time constant; part of
	// the index probe (or prefilled in the head buffer).
	kcolConst kcolOp = iota
	// kcolProbe: the column must equal a register bound before this
	// step; part of the index probe (or copied into the head buffer).
	kcolProbe
	// kcolOut: first occurrence of a variable — write the candidate's
	// column value into the register.
	kcolOut
	// kcolChk: the variable first occurred earlier in this same literal
	// — compare the candidate's column against the register.
	kcolChk
	// kcolPat: a compound argument containing at least one variable not
	// yet bound — decompose the candidate's column against a pattern
	// template, binding fresh registers (cons(H, T) pulling a list
	// apart). Cannot join the probe mask: its value is unknown until
	// the candidate arrives.
	kcolPat
	// kcolBuild: a compound argument (or head position) whose variables
	// are all bound — construct the term from the registers. In a scan
	// it joins the probe mask, exactly like the generic interpreter,
	// whose per-row resolution makes such a column ground.
	kcolBuild
)

// kcol is one column's compiled behavior.
type kcol struct {
	op  kcolOp
	reg int       // kcolProbe/kcolOut/kcolChk
	val term.Term // kcolConst
	pat *kpat     // kcolPat
	bld *btmpl    // kcolBuild
}

// kpatKind discriminates pattern-template nodes.
type kpatKind uint8

const (
	// patConst: the subterm must equal a ground compile-time constant.
	patConst kpatKind = iota
	// patProbe: the subterm must equal a register bound earlier (in an
	// earlier step, or by a patOut to the left in this same pattern).
	patProbe
	// patOut: first occurrence of a variable — bind the register to the
	// subterm.
	patOut
	// patComp: the subterm must be a compound with this functor and
	// arity; recurse into the argument patterns left to right.
	patComp
)

// kpat is a compiled decomposition pattern: one-way structural
// unification of a pattern containing variables against a ground
// candidate value. Matching walks candidates left to right, so a
// variable bound by a patOut is visible to every patProbe after it —
// the same order term.Unify resolves a non-ground pattern.
type kpat struct {
	kind    kpatKind
	reg     int       // patProbe/patOut
	lit     term.Term // patConst
	functor string    // patComp
	args    []*kpat   // patComp
}

// btmpl is a compiled construction template: a ground term assembled
// structurally from registers and constants. Construction is purely
// structural — arithmetic functors are built as compound terms, not
// evaluated, exactly as the generic interpreter's ResolveAll leaves
// them in head positions and probe columns.
type btmpl struct {
	reg     int       // >= 0: copy a register
	lit     term.Term // ground literal
	functor string    // compound node
	args    []btmpl   // compound node arguments
}

// buildTerm assembles the template's term over the register frame.
// Registers hold only ground values, so the result is always ground.
func buildTerm(b *btmpl, regs []term.Term) term.Term {
	if b.args != nil {
		out := make([]term.Term, len(b.args))
		for i := range b.args {
			out[i] = buildTerm(&b.args[i], regs)
		}
		return term.Comp{Functor: b.functor, Args: out}
	}
	if b.reg >= 0 {
		return regs[b.reg]
	}
	return b.lit
}

// matchPat matches a ground value against a pattern template, binding
// fresh registers. It is the kernels' one-way unification: the value
// side is ground (it came out of a relation or a bound template), so
// no occurs check or bidirectional binding is needed.
func matchPat(p *kpat, v term.Term, regs []term.Term) bool {
	switch p.kind {
	case patConst:
		return term.Equal(p.lit, v)
	case patProbe:
		return term.Equal(regs[p.reg], v)
	case patOut:
		regs[p.reg] = v
		return true
	case patComp:
		c, ok := v.(term.Comp)
		if !ok || c.Functor != p.functor || len(c.Args) != len(p.args) {
			return false
		}
		for i, ap := range p.args {
			if !matchPat(ap, c.Args[i], regs) {
				return false
			}
		}
		return true
	}
	return false
}

// kstepKind discriminates the step variants of a join program.
type kstepKind uint8

const (
	kScan   kstepKind = iota // positive literal: indexed relation scan
	kTest   kstepKind = iota // builtin comparison over bound values
	kAssign                  // "=" binding a fresh variable to a value
	kNeg                     // negated literal: membership anti-test
	kMatch                   // "=" decomposing a bound value against a pattern
)

// testOp is the comparison operator of a kTest step.
type testOp uint8

const (
	testEq testOp = iota
	testNe
	testLt
	testLe
	testGt
	testGe
)

// tmpl is a compiled value template: a register reference, a ground
// literal term, or an arithmetic expression over sub-templates
// (evaluated over register values without constructing term.Comp
// nodes). Exactly one representation applies: args != nil → arithmetic
// node, else reg >= 0 → register, else lit.
type tmpl struct {
	reg     int
	lit     term.Term
	functor string
	args    []tmpl
}

// kstep is one step of a join program. A single struct with per-kind
// fields keeps the interpreter loop free of interface dispatch.
type kstep struct {
	kind kstepKind

	// kScan
	tag     string // predicate tag, resolved to a relation per application
	scanIdx int    // index into kernelState.{rels, probes, idxs}
	mask    uint32 // probe columns (kcolConst + kcolProbe + kcolBuild)
	cols    []kcol // per-column behavior, len == literal arity
	nbound  int    // registers bound before this step (block executor carry)

	// kTest / kAssign / kMatch
	test     testOp
	lhs, rhs tmpl  // kTest: both sides; kAssign/kMatch: rhs only
	dstReg   int   // kAssign: register receiving the value
	pat      *kpat // kMatch: pattern matched against rhs's value

	// kNeg
	negTag  string
	negIdx  int    // index into kernelState.{negRels, negBufs}
	negCols []tmpl // register-or-literal templates only
}

// compiledRule is a rule's join program. It is immutable after
// compilation and safely shared across goroutines; all mutable
// execution state lives in kernelState.
type compiledRule struct {
	rule   lang.Rule
	steps  []kstep
	nregs  int
	nscans int
	nnegs  int
	head   []kcol // kcolConst or kcolProbe only
	// scanForBody maps a body-literal index to its scan step's scanIdx
	// (-1 for builtins/negations) — the delta-occurrence remap used by
	// semi-naive variants, which share this one program.
	scanForBody []int
	// scanStep maps a scanIdx back to its index in steps.
	scanStep []int
}

// ProgramKernels is the once-per-program compiled kernel set: one join
// program (or nil, for generic-interpreter rules) per rule of the
// program, indexed by global rule index. It is immutable and safely
// shared across engines and goroutines — the serving layer compiles a
// prepared query form's program once and every subsequent execution
// reuses the same kernels, paying zero compilation.
type ProgramKernels struct {
	prog  *lang.Program
	rules []*compiledRule
}

// CompileProgram compiles every rule of prog to its join kernel.
func CompileProgram(prog *lang.Program) *ProgramKernels {
	pk := &ProgramKernels{prog: prog, rules: make([]*compiledRule, len(prog.Rules))}
	for i, r := range prog.Rules {
		pk.rules[i] = compileRule(r)
	}
	return pk
}

// compileRule compiles r to a join program, or returns nil when the
// rule needs the generic interpreter: a non-ground compound argument
// anywhere the kernel would have to unify or construct terms, a head
// variable no body literal binds (the generic path raises the unsafe-
// rule error), or a deferred goal whose EC point never arrives.
func compileRule(r lang.Rule) *compiledRule {
	cr := &compiledRule{rule: r, scanForBody: make([]int, len(r.Body))}
	regOf := map[string]int{}
	newReg := func(name string) int {
		reg := cr.nregs
		cr.nregs++
		regOf[name] = reg
		return reg
	}

	// mkTmpl compiles a fully-instantiated value position. Non-arith
	// compounds containing variables would require construction per
	// candidate — generic path territory.
	var mkTmpl func(t term.Term) (tmpl, bool)
	mkTmpl = func(t term.Term) (tmpl, bool) {
		switch x := t.(type) {
		case term.Var:
			reg, ok := regOf[x.Name]
			if !ok {
				return tmpl{}, false
			}
			return tmpl{reg: reg, lit: nil}, true
		case term.Comp:
			if term.Ground(t) {
				return tmpl{reg: -1, lit: t}, true
			}
			if n, isOp := lang.ArithArity(x.Functor); isOp && len(x.Args) == n {
				args := make([]tmpl, len(x.Args))
				for i, a := range x.Args {
					at, ok := mkTmpl(a)
					if !ok {
						return tmpl{}, false
					}
					args[i] = at
				}
				return tmpl{reg: -1, functor: x.Functor, args: args}, true
			}
			return tmpl{}, false
		default: // Atom, Int, Str
			return tmpl{reg: -1, lit: t}, true
		}
	}

	// mkBuild compiles a construction template: every variable must be
	// bound already. Construction is structural (see btmpl).
	var mkBuild func(t term.Term) (btmpl, bool)
	mkBuild = func(t term.Term) (btmpl, bool) {
		switch x := t.(type) {
		case term.Var:
			reg, ok := regOf[x.Name]
			if !ok {
				return btmpl{}, false
			}
			return btmpl{reg: reg}, true
		case term.Comp:
			if term.Ground(t) {
				return btmpl{reg: -1, lit: t}, true
			}
			args := make([]btmpl, len(x.Args))
			for i, a := range x.Args {
				bt, ok := mkBuild(a)
				if !ok {
					return btmpl{}, false
				}
				args[i] = bt
			}
			return btmpl{reg: -1, functor: x.Functor, args: args}, true
		default:
			return btmpl{reg: -1, lit: t}, true
		}
	}

	// mkPat compiles a decomposition pattern. Fresh variables allocate
	// registers and are marked in newHere, so a later plain occurrence
	// in the same scan literal compiles to a compare (kcolChk), never a
	// probe — the value only exists once the candidate arrives.
	var mkPat func(t term.Term, newHere map[string]bool) *kpat
	mkPat = func(t term.Term, newHere map[string]bool) *kpat {
		switch x := t.(type) {
		case term.Var:
			if reg, have := regOf[x.Name]; have {
				return &kpat{kind: patProbe, reg: reg}
			}
			p := &kpat{kind: patOut, reg: newReg(x.Name)}
			if newHere != nil {
				newHere[x.Name] = true
			}
			return p
		case term.Comp:
			if term.Ground(t) {
				return &kpat{kind: patConst, lit: t}
			}
			args := make([]*kpat, len(x.Args))
			for i, a := range x.Args {
				args[i] = mkPat(a, newHere)
			}
			return &kpat{kind: patComp, functor: x.Functor, args: args}
		default:
			return &kpat{kind: patConst, lit: t}
		}
	}

	boundSet := func() map[string]bool {
		m := make(map[string]bool, len(regOf))
		for v := range regOf {
			m[v] = true
		}
		return m
	}

	// compileDeferred compiles a builtin or negated goal at its EC
	// point. ready=false defers it; ok=false forces generic fallback.
	compileDeferred := func(l lang.Literal) (ready, ok bool) {
		if l.Neg {
			if lang.IsBuiltin(l.Pred) {
				return false, false // Validate rejects these; be safe
			}
			set := map[string]bool{}
			l.VarSet(set)
			for v := range set {
				if _, have := regOf[v]; !have {
					return false, true
				}
			}
			st := kstep{kind: kNeg, negTag: l.Tag(), negIdx: cr.nnegs, negCols: make([]tmpl, len(l.Args))}
			for i, a := range l.Args {
				tm, tok := mkTmpl(a)
				if !tok || tm.args != nil {
					// Compound args (even arithmetic ones: the generic
					// path probes them structurally, unevaluated) need
					// term construction — fall back.
					return false, false
				}
				st.negCols[i] = tm
			}
			cr.nnegs++
			cr.steps = append(cr.steps, st)
			return true, true
		}
		// Builtin.
		if len(l.Args) != 2 {
			return false, false // generic path raises the arity error
		}
		if !lang.BuiltinEC(l, boundSet()) {
			return false, true
		}
		lhs, rhs := l.Args[0], l.Args[1]
		if l.Pred == lang.OpEq {
			lt, lok := mkTmpl(lhs)
			rt, rok := mkTmpl(rhs)
			if lok && rok {
				cr.steps = append(cr.steps, kstep{kind: kTest, test: testEq, lhs: lt, rhs: rt})
				return true, true
			}
			// One side failed to template. EC guarantees at least one
			// side is fully bound; if the other is a single fresh
			// variable this is an assignment, and a compound with fresh
			// variables is a decomposition match against the bound
			// side's value. Both sides failing (a bound compound that
			// is neither ground nor arithmetic on each side) needs
			// bidirectional unification — fall back.
			if !lok && !rok {
				return false, false
			}
			value, pattern := lt, rhs
			if !lok {
				value, pattern = rt, lhs
			}
			if v, isVar := pattern.(term.Var); isVar {
				cr.steps = append(cr.steps, kstep{kind: kAssign, dstReg: newReg(v.Name), rhs: value})
				return true, true
			}
			// A pattern with an arithmetic top-level functor must stay
			// generic: EvalBuiltin normalizes both sides, so the generic
			// path evaluates it per row (typically to a per-row error,
			// since it failed to template), where a match would compare
			// it structurally. Below top level the generic path leaves
			// arithmetic functors unevaluated, so patterns may contain
			// them freely.
			if lang.IsArithExpr(pattern) {
				return false, false
			}
			cr.steps = append(cr.steps, kstep{kind: kMatch, pat: mkPat(pattern, nil), rhs: value})
			return true, true
		}
		var op testOp
		switch l.Pred {
		case lang.OpNe:
			op = testNe
		case lang.OpLt:
			op = testLt
		case lang.OpLe:
			op = testLe
		case lang.OpGt:
			op = testGt
		case lang.OpGe:
			op = testGe
		default:
			return false, false
		}
		lt, lok := mkTmpl(lhs)
		rt, rok := mkTmpl(rhs)
		if !lok || !rok {
			return false, false
		}
		cr.steps = append(cr.steps, kstep{kind: kTest, test: op, lhs: lt, rhs: rt})
		return true, true
	}

	var pending []lang.Literal
	// flushPending retries deferred goals after a binding step, with a
	// restart after each success — mirroring joinBody's pi = -1 loop:
	// an assignment flushed from pending may enable another goal.
	flushPending := func() bool {
		for pi := 0; pi < len(pending); pi++ {
			ready, ok := compileDeferred(pending[pi])
			if !ok {
				return false
			}
			if !ready {
				continue
			}
			pending = append(pending[:pi:pi], pending[pi+1:]...)
			pi = -1
		}
		return true
	}

	for bi, l := range r.Body {
		cr.scanForBody[bi] = -1
		if l.Neg || lang.IsBuiltin(l.Pred) {
			ready, ok := compileDeferred(l)
			if !ok {
				return nil
			}
			if !ready {
				pending = append(pending, l)
				continue
			}
			if !flushPending() {
				return nil
			}
			continue
		}
		// Positive relational literal → scan step.
		if len(l.Args) > lang.MaxAdornArity {
			return nil // Validate rejects these; be safe
		}
		st := kstep{kind: kScan, tag: l.Tag(), scanIdx: cr.nscans, cols: make([]kcol, len(l.Args)), nbound: cr.nregs}
		newHere := map[string]bool{}
		for ai, a := range l.Args {
			if v, isVar := a.(term.Var); isVar {
				if reg, have := regOf[v.Name]; have {
					if newHere[v.Name] {
						st.cols[ai] = kcol{op: kcolChk, reg: reg}
					} else {
						st.cols[ai] = kcol{op: kcolProbe, reg: reg}
						st.mask |= 1 << uint(ai)
					}
					continue
				}
				st.cols[ai] = kcol{op: kcolOut, reg: newReg(v.Name)}
				newHere[v.Name] = true
				continue
			}
			if !term.Ground(a) {
				// A compound with variables. All bound (and none bound
				// first in this literal, whose value only exists per
				// candidate): construct it per application and probe —
				// the generic interpreter's per-row resolution makes
				// such a column ground, so it probes on it too, and the
				// candidate sets (hence the work counters) must agree.
				// Otherwise: decompose the candidate's column against a
				// pattern, binding the fresh variables.
				if bt, ok := mkBuild(a); ok && !anyNewHere(a, newHere) {
					st.cols[ai] = kcol{op: kcolBuild, bld: &bt}
					st.mask |= 1 << uint(ai)
					continue
				}
				st.cols[ai] = kcol{op: kcolPat, pat: mkPat(a, newHere)}
				continue
			}
			st.cols[ai] = kcol{op: kcolConst, val: a}
			st.mask |= 1 << uint(ai)
		}
		cr.scanForBody[bi] = st.scanIdx
		cr.scanStep = append(cr.scanStep, len(cr.steps))
		cr.nscans++
		cr.steps = append(cr.steps, st)
		if !flushPending() {
			return nil
		}
	}
	if len(pending) > 0 {
		return nil // generic path raises "never became evaluable"
	}
	// Head template: registers, constants, and fully-bound construction
	// templates (cons(Y, P) assembled from body bindings). A variable no
	// body literal binds falls back to the generic path, which raises
	// the unsafe-rule error — including one buried in a compound.
	cr.head = make([]kcol, len(r.Head.Args))
	for ai, a := range r.Head.Args {
		if v, isVar := a.(term.Var); isVar {
			reg, have := regOf[v.Name]
			if !have {
				return nil
			}
			cr.head[ai] = kcol{op: kcolProbe, reg: reg}
			continue
		}
		if !term.Ground(a) {
			bt, ok := mkBuild(a)
			if !ok {
				return nil
			}
			cr.head[ai] = kcol{op: kcolBuild, bld: &bt}
			continue
		}
		cr.head[ai] = kcol{op: kcolConst, val: a}
	}
	return cr
}

// anyNewHere reports whether t contains a variable first bound inside
// the scan literal currently being compiled — such a variable has no
// value until the candidate arrives, so a compound containing it can
// never be constructed into the probe.
func anyNewHere(t term.Term, newHere map[string]bool) bool {
	switch x := t.(type) {
	case term.Var:
		return newHere[x.Name]
	case term.Comp:
		for _, a := range x.Args {
			if anyNewHere(a, newHere) {
				return true
			}
		}
	}
	return false
}

// kernelState is the mutable, reusable execution state for one
// compiled rule in one evaluation context (one goroutine): the
// register frame plus every buffer the join program needs, so
// steady-state rule application allocates nothing. Constant cells of
// the probe, negation, and head buffers are prefilled here, once.
type kernelState struct {
	regs    []term.Term
	rels    []*store.Relation // per scan, resolved per application
	probes  []store.Tuple     // per scan, consts prefilled
	idxs    [][]int32         // per scan, reusable match-index buffers
	negRels []*store.Relation // per negation, resolved per application
	negBufs []store.Tuple     // per negation, consts prefilled
	headBuf store.Tuple       // consts prefilled
	blk     *blockState       // vectorized executor state, built on demand (block.go)
}

func newKernelState(cr *compiledRule) *kernelState {
	ks := &kernelState{
		regs:    make([]term.Term, cr.nregs),
		rels:    make([]*store.Relation, cr.nscans),
		probes:  make([]store.Tuple, cr.nscans),
		idxs:    make([][]int32, cr.nscans),
		negRels: make([]*store.Relation, cr.nnegs),
		negBufs: make([]store.Tuple, cr.nnegs),
		headBuf: make(store.Tuple, len(cr.head)),
	}
	for i := range ks.idxs {
		// Pre-size the match-index buffers: fixpoint rounds reuse this
		// state, and starting at a useful capacity avoids the regrow
		// churn of the first rounds after every reset.
		ks.idxs[i] = make([]int32, 0, 64)
	}
	for _, st := range cr.steps {
		switch st.kind {
		case kScan:
			p := make(store.Tuple, len(st.cols))
			for i, c := range st.cols {
				if c.op == kcolConst {
					p[i] = c.val
				}
			}
			ks.probes[st.scanIdx] = p
		case kNeg:
			b := make(store.Tuple, len(st.negCols))
			for i, tm := range st.negCols {
				if tm.reg < 0 {
					b[i] = tm.lit
				}
			}
			ks.negBufs[st.negIdx] = b
		}
	}
	for i, c := range cr.head {
		if c.op == kcolConst {
			ks.headBuf[i] = c.val
		}
	}
	return ks
}

// kstate returns the context's cached kernel state for cr, creating it
// on first use. Contexts are goroutine-local, so no locking.
func (cx *evalCtx) kstate(cr *compiledRule) *kernelState {
	if ks, ok := cx.kstates[cr]; ok {
		return ks
	}
	if cx.kstates == nil {
		cx.kstates = map[*compiledRule]*kernelState{}
	}
	ks := newKernelState(cr)
	cx.kstates[cr] = ks
	return ks
}

// kernelRun bundles the per-application parameters of a join-program
// execution so the recursive step walk passes a single receiver.
type kernelRun struct {
	cx      *evalCtx
	cr      *compiledRule
	ks      *kernelState
	head    *store.Relation
	headTag string
	collect func(string, store.Tuple)
}

// applyCompiled executes a rule's join program — the compiled
// counterpart of applyRule's generic joinBody walk, with identical
// counter accounting, governor charging, and emit semantics.
func (cx *evalCtx) applyCompiled(cr *compiledRule, deltaOcc int, deltas map[string]*store.Relation, collect func(string, store.Tuple)) error {
	e := cx.e
	ks := cx.kstate(cr)
	// Resolve each scan's relation: the designated delta occurrence
	// reads this round's delta, everything else the full relation.
	for _, st := range cr.steps {
		switch st.kind {
		case kScan:
			ks.rels[st.scanIdx] = e.RelationFor(st.tag)
		case kNeg:
			ks.negRels[st.negIdx] = e.RelationFor(st.negTag)
		}
	}
	if deltas != nil && deltaOcc >= 0 && deltaOcc < len(cr.scanForBody) {
		if si := cr.scanForBody[deltaOcc]; si >= 0 {
			ks.rels[si] = deltas[cr.steps[cr.scanStep[si]].tag]
		}
	}
	k := kernelRun{
		cx:      cx,
		cr:      cr,
		ks:      ks,
		head:    e.ensureDerived(cr.rule.Head.Tag(), cr.rule.Head.Arity()),
		headTag: cr.rule.Head.Tag(),
		collect: collect,
	}
	// Vectorized execution batches a block of probes ahead of the
	// emits they feed, so it requires that no scan or negation read
	// the relation being inserted into. Frozen-mode applications
	// (cx.buf != nil) never insert into a scanned relation; direct-mode
	// applications qualify unless a body occurrence resolved to the
	// head relation itself (seed rounds of recursive cliques, naive
	// re-derivation rounds), which keep the tuple executor's
	// mid-application visibility.
	if bs := e.opts.BatchSize; bs > 1 && (cx.buf != nil || !ks.aliasesHead(k.head)) {
		return k.applyBlocked(bs)
	}
	return k.step(0)
}

// step executes the join program from step si onward; si == len(steps)
// emits the head tuple.
func (k *kernelRun) step(si int) error {
	cx, ks := k.cx, k.ks
	// Same deadline discipline as joinBody: the join can churn without
	// deriving anything new, so tick per step frame, not per derivation.
	if err := cx.e.opts.Gov.Tick(); err != nil {
		return err
	}
	if si == len(k.cr.steps) {
		return k.emit()
	}
	st := &k.cr.steps[si]
	switch st.kind {
	case kScan:
		rel := ks.rels[st.scanIdx]
		if rel == nil || rel.Len() == 0 {
			return nil
		}
		cx.counters.Lookups++
		if st.mask == 0 {
			// Full scan. Capture the length first: in direct mode the
			// head relation may be the relation being scanned, and emit
			// appends to it mid-iteration.
			n := rel.Len()
			for ti := 0; ti < n; ti++ {
				if err := k.scanCandidate(si, st, rel.TupleAt(ti)); err != nil {
					return err
				}
			}
			return nil
		}
		probe := ks.probes[st.scanIdx]
		for i, c := range st.cols {
			switch c.op {
			case kcolProbe:
				probe[i] = ks.regs[c.reg]
			case kcolBuild:
				probe[i] = buildTerm(c.bld, ks.regs)
			}
		}
		// AppendMatches collects (and fully verifies) all match indexes
		// before we touch any candidate, so emit-inserts into the same
		// relation cannot invalidate the iteration. The buffer is
		// stored back to keep its grown capacity.
		idxs := rel.AppendMatches(st.mask, probe, ks.idxs[st.scanIdx][:0])
		ks.idxs[st.scanIdx] = idxs
		for _, j := range idxs {
			if err := k.scanCandidate(si, st, rel.TupleAt(int(j))); err != nil {
				return err
			}
		}
		return nil
	case kTest:
		cx.counters.BuiltinCalls++
		ok, err := k.evalTest(st)
		if err != nil || !ok {
			return err
		}
		return k.step(si + 1)
	case kAssign:
		cx.counters.BuiltinCalls++
		v, err := k.resolveNorm(st.rhs)
		if err != nil {
			return err
		}
		ks.regs[st.dstReg] = v
		return k.step(si + 1)
	case kMatch:
		cx.counters.BuiltinCalls++
		v, err := k.resolveNorm(st.rhs)
		if err != nil {
			return err
		}
		if !matchPat(st.pat, v, ks.regs) {
			return nil
		}
		return k.step(si + 1)
	case kNeg:
		cx.counters.Lookups++
		rel := ks.negRels[st.negIdx]
		if rel == nil {
			return k.step(si + 1)
		}
		buf := ks.negBufs[st.negIdx]
		for i, tm := range st.negCols {
			if tm.reg >= 0 {
				buf[i] = ks.regs[tm.reg]
			}
		}
		if rel.Contains(buf) {
			return nil
		}
		return k.step(si + 1)
	}
	return nil
}

// scanCandidate binds a scan step's output columns from one candidate
// tuple (probe columns are already verified) and recurses.
func (k *kernelRun) scanCandidate(si int, st *kstep, t store.Tuple) error {
	k.cx.counters.Unifications++
	regs := k.ks.regs
	for i, c := range st.cols {
		switch c.op {
		case kcolOut:
			regs[c.reg] = t[i]
		case kcolChk:
			if !term.Equal(regs[c.reg], t[i]) {
				return nil
			}
		case kcolConst:
			// Full-scan steps have no probe verification; indexed steps
			// arrive pre-verified, making this Equal a cheap pointer /
			// small-value comparison that short-circuits true.
			if st.mask == 0 && !term.Equal(c.val, t[i]) {
				return nil
			}
		case kcolProbe:
			if st.mask == 0 && !term.Equal(regs[c.reg], t[i]) {
				return nil
			}
		case kcolPat:
			if !matchPat(c.pat, t[i], regs) {
				return nil
			}
		case kcolBuild:
			// Always part of the probe mask, so the candidate arrives
			// pre-verified against the constructed value.
		}
	}
	return k.step(si + 1)
}

// evalTest evaluates a comparison step over the register frame.
func (k *kernelRun) evalTest(st *kstep) (bool, error) {
	switch st.test {
	case testEq, testNe:
		// "=" / "\=" over bound sides: normalize (evaluate a side that
		// is an arithmetic expression — including one sitting in a
		// register, e.g. from a fact f(1+2)) and compare structurally,
		// exactly like lang.EvalBuiltin.
		lv, err := k.resolveNorm(st.lhs)
		if err != nil {
			return false, err
		}
		rv, err := k.resolveNorm(st.rhs)
		if err != nil {
			return false, err
		}
		eq := term.Equal(lv, rv)
		if st.test == testEq {
			return eq, nil
		}
		return !eq, nil
	}
	a, err := k.evalArith(st.lhs)
	if err != nil {
		return false, err
	}
	b, err := k.evalArith(st.rhs)
	if err != nil {
		return false, err
	}
	switch st.test {
	case testLt:
		return a < b, nil
	case testLe:
		return a <= b, nil
	case testGt:
		return a > b, nil
	case testGe:
		return a >= b, nil
	}
	return false, nil
}

// resolveNorm produces a template's term value with "=" normalization:
// arithmetic expressions (static or dynamic) evaluate to their integer
// value, everything else passes through.
func (k *kernelRun) resolveNorm(t tmpl) (term.Term, error) {
	if t.args != nil {
		v, err := k.evalArith(t)
		return v, err
	}
	var v term.Term
	if t.reg >= 0 {
		v = k.ks.regs[t.reg]
	} else {
		v = t.lit
	}
	return lang.NormalizeEqSide(v)
}

// evalArith evaluates a template as an arithmetic expression over the
// register frame, without constructing term.Comp nodes for the
// variable-bearing expressions the compiler broke into sub-templates.
func (k *kernelRun) evalArith(t tmpl) (term.Int, error) {
	if t.args == nil {
		if t.reg >= 0 {
			return lang.EvalArith(k.ks.regs[t.reg])
		}
		return lang.EvalArith(t.lit)
	}
	a, err := k.evalArith(t.args[0])
	if err != nil {
		return 0, err
	}
	if len(t.args) == 1 {
		return lang.ApplyArith1(t.functor, a)
	}
	b, err := k.evalArith(t.args[1])
	if err != nil {
		return 0, err
	}
	return lang.ApplyArith2(t.functor, a, b)
}

// emit materializes the head tuple from the register frame into the
// reusable head buffer and inserts or buffers it — the compiled twin
// of applyRule's emit closure. The compiler guarantees groundness
// (registers only ever hold ground values), so no per-arg check.
func (k *kernelRun) emit() error {
	cx, ks := k.cx, k.ks
	for i, c := range k.cr.head {
		switch c.op {
		case kcolProbe:
			ks.headBuf[i] = ks.regs[c.reg]
		case kcolBuild:
			ks.headBuf[i] = buildTerm(c.bld, ks.regs)
		}
	}
	t := ks.headBuf
	if cx.buf != nil {
		// Frozen mode: dedup against the (stable) head snapshot, buffer
		// the rest. InsertCopy clones only genuinely new tuples, so the
		// shared buffer never aliases the reusable frame.
		if k.head.Contains(t) {
			return nil
		}
		added, err := cx.buf.InsertCopy(t)
		if err != nil || !added {
			return err
		}
		return cx.recordBuffered()
	}
	added, err := k.head.InsertCopy(t)
	if err != nil {
		return err
	}
	if !added {
		return nil
	}
	return cx.recordInserted(k.headTag, k.head.TupleAt(k.head.Len()-1), k.collect)
}
