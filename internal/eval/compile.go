package eval

// Rule compilation to positional join kernels. The paper's premise
// (§4, §7) is that rules are *compiled* into relational operations in
// the order the optimizer chose; this file realizes that for the
// fixpoint engine. compileRule turns a rule body into a join program —
// a flat array of steps whose column behavior is resolved once, at
// compile time:
//
//   - each positive literal becomes a scan step whose columns are
//     classified as constants (index probe), already-bound variables
//     (index probe from a register), first occurrences (write a
//     register), or repeats within the literal (compare a register);
//   - each builtin becomes a test or an assignment placed at the
//     earliest point its arguments are instantiated — the effective
//     computability (EC) schedule of §8.1, resolved statically because
//     instantiation depends only on literal order, never on data;
//   - each negated literal becomes an anti-join membership test, again
//     placed at its EC point.
//
// Execution runs over a flat []term.Term register frame reused across
// the whole rule application: no substitution maps, no Clone, no
// ResolveAll, reused probe and match-index buffers, and one reusable
// head buffer that only pays a copy when a derived tuple is genuinely
// new. Rules the compiler cannot prove safe for this representation —
// non-ground compound arguments needing real unification, head
// compounds built from body bindings, goals whose EC point never
// arrives — return nil and fall back to the generic joinBody
// interpreter, preserving its answers and its error timing exactly.

import (
	"ldl/internal/lang"
	"ldl/internal/store"
	"ldl/internal/term"
)

// kcolOp classifies one column of a scan step (or head template).
type kcolOp uint8

const (
	// kcolConst: the column must equal a compile-time constant; part of
	// the index probe (or prefilled in the head buffer).
	kcolConst kcolOp = iota
	// kcolProbe: the column must equal a register bound before this
	// step; part of the index probe (or copied into the head buffer).
	kcolProbe
	// kcolOut: first occurrence of a variable — write the candidate's
	// column value into the register.
	kcolOut
	// kcolChk: the variable first occurred earlier in this same literal
	// — compare the candidate's column against the register.
	kcolChk
)

// kcol is one column's compiled behavior.
type kcol struct {
	op  kcolOp
	reg int       // kcolProbe/kcolOut/kcolChk
	val term.Term // kcolConst
}

// kstepKind discriminates the step variants of a join program.
type kstepKind uint8

const (
	kScan   kstepKind = iota // positive literal: indexed relation scan
	kTest   kstepKind = iota // builtin comparison over bound values
	kAssign                  // "=" binding a fresh variable to a value
	kNeg                     // negated literal: membership anti-test
)

// testOp is the comparison operator of a kTest step.
type testOp uint8

const (
	testEq testOp = iota
	testNe
	testLt
	testLe
	testGt
	testGe
)

// tmpl is a compiled value template: a register reference, a ground
// literal term, or an arithmetic expression over sub-templates
// (evaluated over register values without constructing term.Comp
// nodes). Exactly one representation applies: args != nil → arithmetic
// node, else reg >= 0 → register, else lit.
type tmpl struct {
	reg     int
	lit     term.Term
	functor string
	args    []tmpl
}

// kstep is one step of a join program. A single struct with per-kind
// fields keeps the interpreter loop free of interface dispatch.
type kstep struct {
	kind kstepKind

	// kScan
	tag     string // predicate tag, resolved to a relation per application
	scanIdx int    // index into kernelState.{rels, probes, idxs}
	mask    uint32 // probe columns (kcolConst + kcolProbe)
	cols    []kcol // per-column behavior, len == literal arity

	// kTest / kAssign
	test     testOp
	lhs, rhs tmpl // kTest: both sides; kAssign: rhs only
	dstReg   int  // kAssign: register receiving the value

	// kNeg
	negTag  string
	negIdx  int    // index into kernelState.{negRels, negBufs}
	negCols []tmpl // register-or-literal templates only
}

// compiledRule is a rule's join program. It is immutable after
// compilation and safely shared across goroutines; all mutable
// execution state lives in kernelState.
type compiledRule struct {
	rule   lang.Rule
	steps  []kstep
	nregs  int
	nscans int
	nnegs  int
	head   []kcol // kcolConst or kcolProbe only
	// scanForBody maps a body-literal index to its scan step's scanIdx
	// (-1 for builtins/negations) — the delta-occurrence remap used by
	// semi-naive variants, which share this one program.
	scanForBody []int
	// scanStep maps a scanIdx back to its index in steps.
	scanStep []int
}

// ProgramKernels is the once-per-program compiled kernel set: one join
// program (or nil, for generic-interpreter rules) per rule of the
// program, indexed by global rule index. It is immutable and safely
// shared across engines and goroutines — the serving layer compiles a
// prepared query form's program once and every subsequent execution
// reuses the same kernels, paying zero compilation.
type ProgramKernels struct {
	prog  *lang.Program
	rules []*compiledRule
}

// CompileProgram compiles every rule of prog to its join kernel.
func CompileProgram(prog *lang.Program) *ProgramKernels {
	pk := &ProgramKernels{prog: prog, rules: make([]*compiledRule, len(prog.Rules))}
	for i, r := range prog.Rules {
		pk.rules[i] = compileRule(r)
	}
	return pk
}

// compileRule compiles r to a join program, or returns nil when the
// rule needs the generic interpreter: a non-ground compound argument
// anywhere the kernel would have to unify or construct terms, a head
// variable no body literal binds (the generic path raises the unsafe-
// rule error), or a deferred goal whose EC point never arrives.
func compileRule(r lang.Rule) *compiledRule {
	cr := &compiledRule{rule: r, scanForBody: make([]int, len(r.Body))}
	regOf := map[string]int{}
	newReg := func(name string) int {
		reg := cr.nregs
		cr.nregs++
		regOf[name] = reg
		return reg
	}

	// mkTmpl compiles a fully-instantiated value position. Non-arith
	// compounds containing variables would require construction per
	// candidate — generic path territory.
	var mkTmpl func(t term.Term) (tmpl, bool)
	mkTmpl = func(t term.Term) (tmpl, bool) {
		switch x := t.(type) {
		case term.Var:
			reg, ok := regOf[x.Name]
			if !ok {
				return tmpl{}, false
			}
			return tmpl{reg: reg, lit: nil}, true
		case term.Comp:
			if term.Ground(t) {
				return tmpl{reg: -1, lit: t}, true
			}
			if n, isOp := lang.ArithArity(x.Functor); isOp && len(x.Args) == n {
				args := make([]tmpl, len(x.Args))
				for i, a := range x.Args {
					at, ok := mkTmpl(a)
					if !ok {
						return tmpl{}, false
					}
					args[i] = at
				}
				return tmpl{reg: -1, functor: x.Functor, args: args}, true
			}
			return tmpl{}, false
		default: // Atom, Int, Str
			return tmpl{reg: -1, lit: t}, true
		}
	}

	boundSet := func() map[string]bool {
		m := make(map[string]bool, len(regOf))
		for v := range regOf {
			m[v] = true
		}
		return m
	}

	// compileDeferred compiles a builtin or negated goal at its EC
	// point. ready=false defers it; ok=false forces generic fallback.
	compileDeferred := func(l lang.Literal) (ready, ok bool) {
		if l.Neg {
			if lang.IsBuiltin(l.Pred) {
				return false, false // Validate rejects these; be safe
			}
			set := map[string]bool{}
			l.VarSet(set)
			for v := range set {
				if _, have := regOf[v]; !have {
					return false, true
				}
			}
			st := kstep{kind: kNeg, negTag: l.Tag(), negIdx: cr.nnegs, negCols: make([]tmpl, len(l.Args))}
			for i, a := range l.Args {
				tm, tok := mkTmpl(a)
				if !tok || tm.args != nil {
					// Compound args (even arithmetic ones: the generic
					// path probes them structurally, unevaluated) need
					// term construction — fall back.
					return false, false
				}
				st.negCols[i] = tm
			}
			cr.nnegs++
			cr.steps = append(cr.steps, st)
			return true, true
		}
		// Builtin.
		if len(l.Args) != 2 {
			return false, false // generic path raises the arity error
		}
		if !lang.BuiltinEC(l, boundSet()) {
			return false, true
		}
		lhs, rhs := l.Args[0], l.Args[1]
		if l.Pred == lang.OpEq {
			lt, lok := mkTmpl(lhs)
			rt, rok := mkTmpl(rhs)
			if lok && rok {
				cr.steps = append(cr.steps, kstep{kind: kTest, test: testEq, lhs: lt, rhs: rt})
				return true, true
			}
			// One side failed to template. EC guarantees at least one
			// side is fully bound; if the other is a single fresh
			// variable this is an assignment, anything else (compound
			// with unbound vars) needs unification — fall back.
			if v, isVar := lhs.(term.Var); isVar && !lok && rok {
				cr.steps = append(cr.steps, kstep{kind: kAssign, dstReg: newReg(v.Name), rhs: rt})
				return true, true
			}
			if v, isVar := rhs.(term.Var); isVar && !rok && lok {
				cr.steps = append(cr.steps, kstep{kind: kAssign, dstReg: newReg(v.Name), rhs: lt})
				return true, true
			}
			return false, false
		}
		var op testOp
		switch l.Pred {
		case lang.OpNe:
			op = testNe
		case lang.OpLt:
			op = testLt
		case lang.OpLe:
			op = testLe
		case lang.OpGt:
			op = testGt
		case lang.OpGe:
			op = testGe
		default:
			return false, false
		}
		lt, lok := mkTmpl(lhs)
		rt, rok := mkTmpl(rhs)
		if !lok || !rok {
			return false, false
		}
		cr.steps = append(cr.steps, kstep{kind: kTest, test: op, lhs: lt, rhs: rt})
		return true, true
	}

	var pending []lang.Literal
	// flushPending retries deferred goals after a binding step, with a
	// restart after each success — mirroring joinBody's pi = -1 loop:
	// an assignment flushed from pending may enable another goal.
	flushPending := func() bool {
		for pi := 0; pi < len(pending); pi++ {
			ready, ok := compileDeferred(pending[pi])
			if !ok {
				return false
			}
			if !ready {
				continue
			}
			pending = append(pending[:pi:pi], pending[pi+1:]...)
			pi = -1
		}
		return true
	}

	for bi, l := range r.Body {
		cr.scanForBody[bi] = -1
		if l.Neg || lang.IsBuiltin(l.Pred) {
			ready, ok := compileDeferred(l)
			if !ok {
				return nil
			}
			if !ready {
				pending = append(pending, l)
				continue
			}
			if !flushPending() {
				return nil
			}
			continue
		}
		// Positive relational literal → scan step.
		if len(l.Args) > lang.MaxAdornArity {
			return nil // Validate rejects these; be safe
		}
		st := kstep{kind: kScan, tag: l.Tag(), scanIdx: cr.nscans, cols: make([]kcol, len(l.Args))}
		newHere := map[string]bool{}
		for ai, a := range l.Args {
			if v, isVar := a.(term.Var); isVar {
				if reg, have := regOf[v.Name]; have {
					if newHere[v.Name] {
						st.cols[ai] = kcol{op: kcolChk, reg: reg}
					} else {
						st.cols[ai] = kcol{op: kcolProbe, reg: reg}
						st.mask |= 1 << uint(ai)
					}
					continue
				}
				st.cols[ai] = kcol{op: kcolOut, reg: newReg(v.Name)}
				newHere[v.Name] = true
				continue
			}
			if !term.Ground(a) {
				return nil // non-ground compound column: needs unification
			}
			st.cols[ai] = kcol{op: kcolConst, val: a}
			st.mask |= 1 << uint(ai)
		}
		cr.scanForBody[bi] = st.scanIdx
		cr.scanStep = append(cr.scanStep, len(cr.steps))
		cr.nscans++
		cr.steps = append(cr.steps, st)
		if !flushPending() {
			return nil
		}
	}
	if len(pending) > 0 {
		return nil // generic path raises "never became evaluable"
	}
	// Head template: registers and constants only. A head compound
	// built from body bindings (e.g. cons(Y, P)) or a variable no body
	// literal binds falls back to the generic path.
	cr.head = make([]kcol, len(r.Head.Args))
	for ai, a := range r.Head.Args {
		if v, isVar := a.(term.Var); isVar {
			reg, have := regOf[v.Name]
			if !have {
				return nil
			}
			cr.head[ai] = kcol{op: kcolProbe, reg: reg}
			continue
		}
		if !term.Ground(a) {
			return nil
		}
		cr.head[ai] = kcol{op: kcolConst, val: a}
	}
	return cr
}

// kernelState is the mutable, reusable execution state for one
// compiled rule in one evaluation context (one goroutine): the
// register frame plus every buffer the join program needs, so
// steady-state rule application allocates nothing. Constant cells of
// the probe, negation, and head buffers are prefilled here, once.
type kernelState struct {
	regs    []term.Term
	rels    []*store.Relation // per scan, resolved per application
	probes  []store.Tuple     // per scan, consts prefilled
	idxs    [][]int32         // per scan, reusable match-index buffers
	negRels []*store.Relation // per negation, resolved per application
	negBufs []store.Tuple     // per negation, consts prefilled
	headBuf store.Tuple       // consts prefilled
}

func newKernelState(cr *compiledRule) *kernelState {
	ks := &kernelState{
		regs:    make([]term.Term, cr.nregs),
		rels:    make([]*store.Relation, cr.nscans),
		probes:  make([]store.Tuple, cr.nscans),
		idxs:    make([][]int32, cr.nscans),
		negRels: make([]*store.Relation, cr.nnegs),
		negBufs: make([]store.Tuple, cr.nnegs),
		headBuf: make(store.Tuple, len(cr.head)),
	}
	for _, st := range cr.steps {
		switch st.kind {
		case kScan:
			p := make(store.Tuple, len(st.cols))
			for i, c := range st.cols {
				if c.op == kcolConst {
					p[i] = c.val
				}
			}
			ks.probes[st.scanIdx] = p
		case kNeg:
			b := make(store.Tuple, len(st.negCols))
			for i, tm := range st.negCols {
				if tm.reg < 0 {
					b[i] = tm.lit
				}
			}
			ks.negBufs[st.negIdx] = b
		}
	}
	for i, c := range cr.head {
		if c.op == kcolConst {
			ks.headBuf[i] = c.val
		}
	}
	return ks
}

// kstate returns the context's cached kernel state for cr, creating it
// on first use. Contexts are goroutine-local, so no locking.
func (cx *evalCtx) kstate(cr *compiledRule) *kernelState {
	if ks, ok := cx.kstates[cr]; ok {
		return ks
	}
	if cx.kstates == nil {
		cx.kstates = map[*compiledRule]*kernelState{}
	}
	ks := newKernelState(cr)
	cx.kstates[cr] = ks
	return ks
}

// kernelRun bundles the per-application parameters of a join-program
// execution so the recursive step walk passes a single receiver.
type kernelRun struct {
	cx      *evalCtx
	cr      *compiledRule
	ks      *kernelState
	head    *store.Relation
	headTag string
	collect func(string, store.Tuple)
}

// applyCompiled executes a rule's join program — the compiled
// counterpart of applyRule's generic joinBody walk, with identical
// counter accounting, governor charging, and emit semantics.
func (cx *evalCtx) applyCompiled(cr *compiledRule, deltaOcc int, deltas map[string]*store.Relation, collect func(string, store.Tuple)) error {
	e := cx.e
	ks := cx.kstate(cr)
	// Resolve each scan's relation: the designated delta occurrence
	// reads this round's delta, everything else the full relation.
	for _, st := range cr.steps {
		switch st.kind {
		case kScan:
			ks.rels[st.scanIdx] = e.RelationFor(st.tag)
		case kNeg:
			ks.negRels[st.negIdx] = e.RelationFor(st.negTag)
		}
	}
	if deltas != nil && deltaOcc >= 0 && deltaOcc < len(cr.scanForBody) {
		if si := cr.scanForBody[deltaOcc]; si >= 0 {
			ks.rels[si] = deltas[cr.steps[cr.scanStep[si]].tag]
		}
	}
	k := kernelRun{
		cx:      cx,
		cr:      cr,
		ks:      ks,
		head:    e.ensureDerived(cr.rule.Head.Tag(), cr.rule.Head.Arity()),
		headTag: cr.rule.Head.Tag(),
		collect: collect,
	}
	return k.step(0)
}

// step executes the join program from step si onward; si == len(steps)
// emits the head tuple.
func (k *kernelRun) step(si int) error {
	cx, ks := k.cx, k.ks
	// Same deadline discipline as joinBody: the join can churn without
	// deriving anything new, so tick per step frame, not per derivation.
	if err := cx.e.opts.Gov.Tick(); err != nil {
		return err
	}
	if si == len(k.cr.steps) {
		return k.emit()
	}
	st := &k.cr.steps[si]
	switch st.kind {
	case kScan:
		rel := ks.rels[st.scanIdx]
		if rel == nil || rel.Len() == 0 {
			return nil
		}
		cx.counters.Lookups++
		if st.mask == 0 {
			// Full scan. Capture the length first: in direct mode the
			// head relation may be the relation being scanned, and emit
			// appends to it mid-iteration.
			n := rel.Len()
			for ti := 0; ti < n; ti++ {
				if err := k.scanCandidate(si, st, rel.TupleAt(ti)); err != nil {
					return err
				}
			}
			return nil
		}
		probe := ks.probes[st.scanIdx]
		for i, c := range st.cols {
			if c.op == kcolProbe {
				probe[i] = ks.regs[c.reg]
			}
		}
		// AppendMatches collects (and fully verifies) all match indexes
		// before we touch any candidate, so emit-inserts into the same
		// relation cannot invalidate the iteration. The buffer is
		// stored back to keep its grown capacity.
		idxs := rel.AppendMatches(st.mask, probe, ks.idxs[st.scanIdx][:0])
		ks.idxs[st.scanIdx] = idxs
		for _, j := range idxs {
			if err := k.scanCandidate(si, st, rel.TupleAt(int(j))); err != nil {
				return err
			}
		}
		return nil
	case kTest:
		cx.counters.BuiltinCalls++
		ok, err := k.evalTest(st)
		if err != nil || !ok {
			return err
		}
		return k.step(si + 1)
	case kAssign:
		cx.counters.BuiltinCalls++
		v, err := k.resolveNorm(st.rhs)
		if err != nil {
			return err
		}
		ks.regs[st.dstReg] = v
		return k.step(si + 1)
	case kNeg:
		cx.counters.Lookups++
		rel := ks.negRels[st.negIdx]
		if rel == nil {
			return k.step(si + 1)
		}
		buf := ks.negBufs[st.negIdx]
		for i, tm := range st.negCols {
			if tm.reg >= 0 {
				buf[i] = ks.regs[tm.reg]
			}
		}
		if rel.Contains(buf) {
			return nil
		}
		return k.step(si + 1)
	}
	return nil
}

// scanCandidate binds a scan step's output columns from one candidate
// tuple (probe columns are already verified) and recurses.
func (k *kernelRun) scanCandidate(si int, st *kstep, t store.Tuple) error {
	k.cx.counters.Unifications++
	regs := k.ks.regs
	for i, c := range st.cols {
		switch c.op {
		case kcolOut:
			regs[c.reg] = t[i]
		case kcolChk:
			if !term.Equal(regs[c.reg], t[i]) {
				return nil
			}
		case kcolConst:
			// Full-scan steps have no probe verification; indexed steps
			// arrive pre-verified, making this Equal a cheap pointer /
			// small-value comparison that short-circuits true.
			if st.mask == 0 && !term.Equal(c.val, t[i]) {
				return nil
			}
		case kcolProbe:
			if st.mask == 0 && !term.Equal(regs[c.reg], t[i]) {
				return nil
			}
		}
	}
	return k.step(si + 1)
}

// evalTest evaluates a comparison step over the register frame.
func (k *kernelRun) evalTest(st *kstep) (bool, error) {
	switch st.test {
	case testEq, testNe:
		// "=" / "\=" over bound sides: normalize (evaluate a side that
		// is an arithmetic expression — including one sitting in a
		// register, e.g. from a fact f(1+2)) and compare structurally,
		// exactly like lang.EvalBuiltin.
		lv, err := k.resolveNorm(st.lhs)
		if err != nil {
			return false, err
		}
		rv, err := k.resolveNorm(st.rhs)
		if err != nil {
			return false, err
		}
		eq := term.Equal(lv, rv)
		if st.test == testEq {
			return eq, nil
		}
		return !eq, nil
	}
	a, err := k.evalArith(st.lhs)
	if err != nil {
		return false, err
	}
	b, err := k.evalArith(st.rhs)
	if err != nil {
		return false, err
	}
	switch st.test {
	case testLt:
		return a < b, nil
	case testLe:
		return a <= b, nil
	case testGt:
		return a > b, nil
	case testGe:
		return a >= b, nil
	}
	return false, nil
}

// resolveNorm produces a template's term value with "=" normalization:
// arithmetic expressions (static or dynamic) evaluate to their integer
// value, everything else passes through.
func (k *kernelRun) resolveNorm(t tmpl) (term.Term, error) {
	if t.args != nil {
		v, err := k.evalArith(t)
		return v, err
	}
	var v term.Term
	if t.reg >= 0 {
		v = k.ks.regs[t.reg]
	} else {
		v = t.lit
	}
	return lang.NormalizeEqSide(v)
}

// evalArith evaluates a template as an arithmetic expression over the
// register frame, without constructing term.Comp nodes for the
// variable-bearing expressions the compiler broke into sub-templates.
func (k *kernelRun) evalArith(t tmpl) (term.Int, error) {
	if t.args == nil {
		if t.reg >= 0 {
			return lang.EvalArith(k.ks.regs[t.reg])
		}
		return lang.EvalArith(t.lit)
	}
	a, err := k.evalArith(t.args[0])
	if err != nil {
		return 0, err
	}
	if len(t.args) == 1 {
		return lang.ApplyArith1(t.functor, a)
	}
	b, err := k.evalArith(t.args[1])
	if err != nil {
		return 0, err
	}
	return lang.ApplyArith2(t.functor, a, b)
}

// emit materializes the head tuple from the register frame into the
// reusable head buffer and inserts or buffers it — the compiled twin
// of applyRule's emit closure. The compiler guarantees groundness
// (registers only ever hold ground values), so no per-arg check.
func (k *kernelRun) emit() error {
	cx, ks := k.cx, k.ks
	for i, c := range k.cr.head {
		if c.op == kcolProbe {
			ks.headBuf[i] = ks.regs[c.reg]
		}
	}
	t := ks.headBuf
	if cx.buf != nil {
		// Frozen mode: dedup against the (stable) head snapshot, buffer
		// the rest. InsertCopy clones only genuinely new tuples, so the
		// shared buffer never aliases the reusable frame.
		if k.head.Contains(t) {
			return nil
		}
		added, err := cx.buf.InsertCopy(t)
		if err != nil || !added {
			return err
		}
		return cx.recordBuffered()
	}
	added, err := k.head.InsertCopy(t)
	if err != nil {
		return err
	}
	if !added {
		return nil
	}
	return cx.recordInserted(k.headTag, k.head.TupleAt(k.head.Len()-1), k.collect)
}
