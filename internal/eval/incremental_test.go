package eval

import (
	"strings"
	"testing"

	"ldl/internal/parser"
	"ldl/internal/store"
)

// runContinuation evaluates src from scratch, then extends the base
// with extra facts and continues the fixpoint incrementally from the
// first run's derived relations. It returns the continued engine, the
// continuation stats, and a scratch engine over the extended program
// for comparison.
func runContinuation(t *testing.T, src, extra string, opts Options) (*Engine, IncrementalStats, *Engine) {
	t.Helper()
	prog1, _, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	db1 := store.NewDatabase()
	if err := db1.LoadFacts(prog1); err != nil {
		t.Fatal(err)
	}
	e1, err := New(prog1, db1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	prior := map[string]*store.Relation{}
	for _, tag := range e1.DerivedTags() {
		prior[tag] = e1.RelationFor(tag)
	}

	prog2, _, err := parser.ParseProgram(src + extra)
	if err != nil {
		t.Fatal(err)
	}
	db2 := store.NewDatabase()
	if err := db2.LoadFacts(prog2); err != nil {
		t.Fatal(err)
	}
	baseDeltas := map[string]*store.Relation{}
	for _, tag := range db2.Tags() {
		nr := db2.Relation(tag)
		old := 0
		if or := db1.Relation(tag); or != nil {
			old = or.Len()
		}
		if nr.Len() > old {
			baseDeltas[tag] = nr.DeltaSince(old)
		}
	}

	inc, err := New(prog2, db2, opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := inc.RunIncremental(prior, baseDeltas)
	if err != nil {
		t.Fatal(err)
	}

	scratch, err := New(prog2, store.NewDatabase(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := scratch.DB.LoadFacts(prog2); err != nil {
		t.Fatal(err)
	}
	if err := scratch.Run(); err != nil {
		t.Fatal(err)
	}
	return inc, st, scratch
}

func sortedString(r *store.Relation) string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, tup := range r.Sorted() {
		b.WriteString(tup.String())
		b.WriteByte(' ')
	}
	return b.String()
}

// assertSameDerived checks every derived relation of the continued
// engine matches the scratch engine's, as sorted tuple sets.
func assertSameDerived(t *testing.T, inc, scratch *Engine) {
	t.Helper()
	for _, tag := range scratch.DerivedTags() {
		got := sortedString(inc.RelationFor(tag))
		want := sortedString(scratch.RelationFor(tag))
		if got != want {
			t.Errorf("%s: incremental %s != scratch %s", tag, got, want)
		}
	}
}

var continuationModes = []struct {
	name string
	opts Options
}{
	{"seq", Options{}},
	{"seq-generic", Options{DisableKernels: true}},
	{"seq-batched", Options{BatchSize: 4}},
	{"par", Options{Parallel: 4}},
	{"par-batched", Options{Parallel: 4, BatchSize: 4}},
}

func TestIncrementalTCMatchesScratch(t *testing.T) {
	src := `
e(1, 2). e(2, 3). e(3, 4). e(10, 11). e(11, 12).
tc(X, Y) <- e(X, Y).
tc(X, Y) <- e(X, Z), tc(Z, Y).
`
	extra := `e(4, 5). e(12, 13). e(5, 1).`
	for _, m := range continuationModes {
		t.Run(m.name, func(t *testing.T) {
			inc, st, scratch := runContinuation(t, src, extra, m.opts)
			assertSameDerived(t, inc, scratch)
			if st.CliquesIncremental != 1 || st.CliquesScratch != 0 {
				t.Errorf("stats: %+v, want 1 incremental clique and no scratch", st)
			}
			if st.DeltaDerived == 0 {
				t.Error("no derived delta recorded despite new reachability")
			}
		})
	}
}

func TestIncrementalUnchangedCliqueShares(t *testing.T) {
	// Two independent cliques over disjoint bases: a delta on e must not
	// touch the clique over f.
	src := `
e(1, 2). e(2, 3).
f(7, 8). f(8, 9).
tc(X, Y) <- e(X, Y).
tc(X, Y) <- e(X, Z), tc(Z, Y).
fc(X, Y) <- f(X, Y).
fc(X, Y) <- f(X, Z), fc(Z, Y).
`
	inc, st, scratch := runContinuation(t, src, `e(3, 4).`, Options{})
	assertSameDerived(t, inc, scratch)
	if st.CliquesShared != 1 || st.CliquesIncremental != 1 {
		t.Errorf("stats: %+v, want 1 shared + 1 incremental", st)
	}
}

func TestIncrementalNoopDelta(t *testing.T) {
	src := `
e(1, 2). e(2, 3).
tc(X, Y) <- e(X, Y).
tc(X, Y) <- e(X, Z), tc(Z, Y).
`
	inc, st, scratch := runContinuation(t, src, ``, Options{})
	assertSameDerived(t, inc, scratch)
	if st.CliquesShared != 1 || st.CliquesIncremental != 0 || st.CliquesScratch != 0 {
		t.Errorf("stats: %+v, want everything shared", st)
	}
}

func TestIncrementalNegationFallsBack(t *testing.T) {
	// unreach reads tc through negation; a delta on e changes tc, so the
	// unreach stratum must recompute from scratch — new edges RETRACT
	// unreach tuples, which no insert-only delta can express.
	src := `
node(1). node(2). node(3).
e(1, 2).
tc(X, Y) <- e(X, Y).
tc(X, Y) <- e(X, Z), tc(Z, Y).
unreach(X, Y) <- node(X), node(Y), not tc(X, Y).
`
	for _, m := range continuationModes {
		t.Run(m.name, func(t *testing.T) {
			inc, st, scratch := runContinuation(t, src, `e(2, 3).`, m.opts)
			assertSameDerived(t, inc, scratch)
			if st.CliquesScratch == 0 {
				t.Errorf("stats: %+v, want a scratch fallback for the negation stratum", st)
			}
			// tc itself is monotone and must have continued incrementally.
			if st.CliquesIncremental == 0 {
				t.Errorf("stats: %+v, want tc continued incrementally", st)
			}
			if got := sortedString(inc.RelationFor("unreach/2")); strings.Contains(got, "(1, 3)") {
				t.Errorf("stale unreach tuple survived: %s", got)
			}
		})
	}
}

func TestIncrementalNegationUnchangedStratumStaysIncremental(t *testing.T) {
	// The negation reads base b, which does NOT change; only e changes.
	// The ok stratum reads node (unchanged) and b (unchanged) — it must
	// be shared, while tc continues incrementally.
	src := `
node(1). node(2).
b(2).
e(1, 2).
tc(X, Y) <- e(X, Y).
tc(X, Y) <- e(X, Z), tc(Z, Y).
ok(X) <- node(X), not b(X).
`
	inc, st, scratch := runContinuation(t, src, `e(2, 3).`, Options{})
	assertSameDerived(t, inc, scratch)
	if st.CliquesScratch != 0 {
		t.Errorf("stats: %+v, want no scratch fallback when the negated input is unchanged", st)
	}
	if st.CliquesShared == 0 {
		t.Errorf("stats: %+v, want the ok stratum shared", st)
	}
}

func TestIncrementalPositiveChangeOnlyKeepsNegationIncremental(t *testing.T) {
	// unreach negates tc, but only node (a positive input) changes —
	// the negated input is untouched, so the stratum stays incremental:
	// new node 4 only ADDS unreach pairs.
	src := `
node(1). node(2). node(3).
e(1, 2). e(2, 3).
tc(X, Y) <- e(X, Y).
tc(X, Y) <- e(X, Z), tc(Z, Y).
unreach(X, Y) <- node(X), node(Y), not tc(X, Y).
big(X) <- unreach(X, Y).
`
	inc, st, scratch := runContinuation(t, src, `node(4).`, Options{})
	assertSameDerived(t, inc, scratch)
	if st.CliquesScratch != 0 {
		t.Errorf("stats: %+v, want no scratch when the negated input is unchanged", st)
	}
}

func TestIncrementalDownstreamOfFallbackContinues(t *testing.T) {
	// acyclic negates tc, and tc changes → acyclic recomputes from
	// scratch. The new edge creates no cycle, so the recomputed acyclic
	// grows monotonically; big, downstream through a positive literal,
	// continues incrementally from the diff instead of recomputing.
	src := `
node(1). node(2). node(3).
e(1, 2). e(2, 3).
tc(X, Y) <- e(X, Y).
tc(X, Y) <- e(X, Z), tc(Z, Y).
acyclic(X) <- node(X), not tc(X, X).
big(X) <- acyclic(X).
`
	inc, st, scratch := runContinuation(t, src, `node(4). e(3, 4).`, Options{})
	assertSameDerived(t, inc, scratch)
	if st.CliquesScratch != 1 {
		t.Errorf("stats: %+v, want exactly the acyclic stratum scratch", st)
	}
	if st.CliquesIncremental != 2 {
		t.Errorf("stats: %+v, want tc and big continued incrementally", st)
	}
}

func TestIncrementalMutualRecursion(t *testing.T) {
	src := `
flat(1, 2). up(2, 3). dn(3, 4).
sg(X, Y) <- flat(X, Y).
sg(X, Y) <- up(X, Z), sg(Z, W), dn(W, Y).
`
	for _, m := range continuationModes {
		t.Run(m.name, func(t *testing.T) {
			inc, _, scratch := runContinuation(t, src, `flat(3, 3). up(1, 10). dn(10, 9). flat(10, 10).`, m.opts)
			assertSameDerived(t, inc, scratch)
		})
	}
}

func TestIncrementalRunTwiceRejected(t *testing.T) {
	prog, _, err := parser.ParseProgram(`e(1, 2). tc(X, Y) <- e(X, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	db := store.NewDatabase()
	if err := db.LoadFacts(prog); err != nil {
		t.Fatal(err)
	}
	e, err := New(prog, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunIncremental(nil, nil); err == nil {
		t.Fatal("RunIncremental after Run should be rejected")
	}
}
