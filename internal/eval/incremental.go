package eval

// Cross-epoch incremental fixpoint (incremental view maintenance).
//
// The epoch discipline is insert-only, so when a batch appends base
// tuples the previous epoch's derived relations are a sound *starting
// point* for the next fixpoint: within the monotone fragment nothing
// ever needs to be retracted, and semi-naive evaluation already knows
// how to grow a fixpoint from a delta. RunIncremental resumes the
// stratified fixpoint from the prior epoch's derived relations,
// seeding each clique with exactly the changed rows of its inputs —
// the appended base suffix, plus the derived consequences of upstream
// cliques — instead of re-deriving the world from empty relations.
//
// Per clique (in the follows order), three outcomes:
//
//   - unchanged: no input changed → the prior relation is shared by
//     pointer. Zero work, zero memory.
//   - incremental: inputs changed only through positive literals → the
//     prior relation is cloned (flat array copies, indexes carried),
//     and a cross-epoch seed round applies one semi-naive variant per
//     changed body occurrence — the delta occurrence reads the change,
//     every other occurrence reads the full new relation, which covers
//     every new derivation (any new combination contains at least one
//     changed row; the variant designating that occurrence finds it).
//     Recursive cliques then iterate the ordinary in-clique semi-naive
//     rounds from the tuples the seed round produced.
//   - scratch: some rule reads a changed input through negation (or an
//     upstream clique changed non-monotonically). Insert-only at the
//     base does NOT imply growth here — a new fact can newly satisfy a
//     negated goal and retract derived tuples — so the clique is
//     recomputed from scratch, exactly as a fresh run would. Its
//     output is then diffed against the prior epoch: if it grew
//     monotonically anyway, downstream cliques continue incrementally
//     from the diff; if anything was retracted, everything downstream
//     of it falls back to scratch too (detected per clique via the
//     dependency graph, never silently stale).
//
// Both drive modes are supported: the sequential engine applies the
// variants inline; the parallel engine fans each round across the
// worker pool exactly like runParallel (cliques are walked in topo
// order — the change-tracking is inherently ordered — but every round
// inside a clique uses the frozen-read merge-later schedule).

import (
	"fmt"

	"ldl/internal/depgraph"
	"ldl/internal/lang"
	"ldl/internal/store"
)

// IncrementalStats reports what an epoch continuation did — the
// serving layer aggregates these into the ivm_* operator counters.
type IncrementalStats struct {
	// CliquesShared counts cliques whose inputs were untouched: their
	// prior relations were adopted by pointer.
	CliquesShared int
	// CliquesIncremental counts cliques continued semi-naively from
	// the prior epoch's relations.
	CliquesIncremental int
	// CliquesScratch counts per-stratum fallbacks to full recomputation
	// (negation over a changed input, or a non-monotone upstream).
	CliquesScratch int
	// Rounds counts in-clique fixpoint rounds run by the incremental
	// continuations (seed rounds excluded, matching Counters.Iterations
	// accounting; scratch cliques' rounds are not included).
	Rounds int
	// DeltaDerived counts derived tuples appended across all changed
	// cliques — the size of the epoch's derived delta.
	DeltaDerived int
}

// RunIncremental computes the program's fixpoint as a continuation of
// a prior epoch's run. prior maps every derived tag to its relation in
// the previous materialization (treated as immutable — changed cliques
// work on clones); baseDeltas maps changed base tags to relations
// holding exactly the appended rows. The engine's database must be the
// new epoch (full relations including the appended rows). After it
// returns, Answers/RelationFor serve the new fixpoint exactly as after
// Run.
func (e *Engine) RunIncremental(prior map[string]*store.Relation, baseDeltas map[string]*store.Relation) (IncrementalStats, error) {
	var st IncrementalStats
	if e.ran {
		return st, fmt.Errorf("eval: RunIncremental on an engine that already ran")
	}
	// changed maps a tag (base or derived) to the delta relation holding
	// its rows appended this epoch. nonMono marks tags whose extension
	// may have shrunk — no sound insert-delta exists for them.
	changed := make(map[string]*store.Relation, len(baseDeltas))
	for tag, d := range baseDeltas {
		if d != nil && d.Len() > 0 {
			changed[tag] = d
		}
	}
	nonMono := map[string]bool{}

	for _, c := range e.Graph.TopoCliques() {
		if len(c.Rules) == 0 {
			continue // base predicate
		}
		rules, _ := e.cliqueRules(c)
		mode := cliqueChangeMode(c, rules, changed, nonMono)
		// A clique head that also received base-fact appends would need
		// its own rows seeded as a delta of itself; the serving layer
		// refuses derived-tag inserts, so treat it as scratch if it ever
		// happens rather than reasoning about self-deltas.
		if mode != cliqueScratch {
			for _, p := range c.Preds {
				if baseDeltas[p] != nil && baseDeltas[p].Len() > 0 {
					mode = cliqueScratch
				}
			}
		}
		if mode != cliqueScratch {
			// The continuation needs every prior relation of the clique.
			for _, p := range c.Preds {
				if prior[p] == nil {
					mode = cliqueScratch
					break
				}
			}
		}

		switch mode {
		case cliqueUnchanged:
			st.CliquesShared++
			for _, p := range c.Preds {
				e.derived[p] = prior[p]
			}

		case cliqueIncremental:
			st.CliquesIncremental++
			preLen := make(map[string]int, len(c.Preds))
			for _, p := range c.Preds {
				r := prior[p].CloneOwned()
				e.derived[p] = r
				preLen[p] = r.Len()
			}
			rounds, err := e.continueClique(c, rules, changed)
			if err != nil {
				return st, err
			}
			st.Rounds += rounds
			for _, p := range c.Preds {
				if n := e.derived[p].Len() - preLen[p]; n > 0 {
					changed[p] = e.derived[p].DeltaSince(preLen[p])
					st.DeltaDerived += n
				}
			}

		case cliqueScratch:
			st.CliquesScratch++
			var err error
			if e.opts.Parallel > 1 {
				err = e.evalCliqueParallel(c)
			} else {
				err = e.evalClique(c)
			}
			if err != nil {
				return st, err
			}
			for _, p := range c.Preds {
				delta, grew := diffDelta(prior[p], e.derived[p])
				if !grew {
					nonMono[p] = true
					continue
				}
				if delta != nil && delta.Len() > 0 {
					changed[p] = delta
					st.DeltaDerived += delta.Len()
				}
			}
		}
	}
	// Predicates with rules but outside every walked clique cannot exist
	// (Analyze puts every head in a clique); still, mirror Run's
	// pre-create so empty heads resolve.
	for _, r := range e.Prog.Rules {
		e.ensureDerived(r.Head.Tag(), r.Head.Arity())
	}
	e.ran = true
	return st, nil
}

// cliqueMode classifies how a clique's inputs changed this epoch.
type cliqueMode int

const (
	cliqueUnchanged cliqueMode = iota
	cliqueIncremental
	cliqueScratch
)

// cliqueChangeMode inspects every body literal of the clique's rules:
// no changed input → unchanged; changed inputs read only positively →
// incremental; a changed (or non-monotone) input read through negation,
// or any non-monotone input at all → scratch.
func cliqueChangeMode(c *depgraph.Clique, rules []lang.Rule, changed map[string]*store.Relation, nonMono map[string]bool) cliqueMode {
	mode := cliqueUnchanged
	for _, r := range rules {
		for _, l := range r.Body {
			if lang.IsBuiltin(l.Pred) {
				continue
			}
			tag := l.Tag()
			if nonMono[tag] {
				return cliqueScratch
			}
			if changed[tag] == nil {
				continue
			}
			if l.Neg {
				return cliqueScratch
			}
			mode = cliqueIncremental
		}
	}
	return mode
}

// continueClique runs the cross-epoch semi-naive continuation for one
// clique whose inputs changed monotonically: a seed round with one
// variant per changed body occurrence, then (for recursive cliques)
// the ordinary in-clique rounds from the seeded deltas. Returns the
// number of in-clique rounds run.
func (e *Engine) continueClique(c *depgraph.Clique, rules []lang.Rule, changed map[string]*store.Relation) (int, error) {
	crs := e.compileRules(c, rules)
	if e.opts.Parallel > 1 {
		return e.continueCliquePar(c, rules, crs, changed)
	}
	cx := &evalCtx{e: e, counters: &e.Counters}
	deltas := e.newDeltas(c)
	collect := func(tag string, t store.Tuple) {
		head := e.derived[tag]
		deltas[tag].InsertFrom(head, head.Len()-1)
	}
	// Seed round: for each body occurrence of a changed input, apply the
	// rule with that occurrence reading the change and the rest reading
	// full new relations. In-clique occurrences read the prior (cloned)
	// relations here — their own change is exactly what the rounds below
	// propagate.
	for i, r := range rules {
		for bi, l := range r.Body {
			if l.Neg || lang.IsBuiltin(l.Pred) || changed[l.Tag()] == nil {
				continue
			}
			if err := cx.applyRule(r, crs[i], bi, changed, collect); err != nil {
				return 0, err
			}
		}
	}
	if !c.Recursive {
		return 0, nil
	}
	rounds := 0
	for iter := 0; ; iter++ {
		if iter >= e.opts.MaxIterations {
			return rounds, fmt.Errorf("%w: clique %v exceeded %d iterations", ErrRunaway, c.Preds, e.opts.MaxIterations)
		}
		if err := e.opts.Gov.AddIteration(); err != nil {
			return rounds, err
		}
		e.Counters.Iterations++
		rounds++
		empty := true
		for _, d := range deltas {
			if d.Len() > 0 {
				empty = false
			}
		}
		if empty {
			return rounds, nil
		}
		next := map[string]*store.Relation{}
		for p, d := range deltas {
			next[p] = store.NewRelationSized(p+"Δ", d.Arity, e.opts.SizeHints[p]/2)
		}
		collectNext := func(tag string, t store.Tuple) {
			head := e.derived[tag]
			next[tag].InsertFrom(head, head.Len()-1)
		}
		for i, r := range rules {
			for bi, l := range r.Body {
				if l.Neg || lang.IsBuiltin(l.Pred) || !c.Contains(l.Tag()) {
					continue
				}
				if err := cx.applyRule(r, crs[i], bi, deltas, collectNext); err != nil {
					return rounds, err
				}
			}
		}
		deltas = next
	}
}

// continueCliquePar is continueClique on the parallel round machinery:
// the seed variants and every subsequent round fan across the worker
// pool with frozen reads and an ordered merge, exactly like
// evalCliqueParallel.
func (e *Engine) continueCliquePar(c *depgraph.Clique, rules []lang.Rule, crs []*compiledRule, changed map[string]*store.Relation) (int, error) {
	ksp := make([]map[*compiledRule]*kernelState, e.opts.Parallel)
	for i := range ksp {
		ksp[i] = map[*compiledRule]*kernelState{}
	}
	deltas := e.newDeltas(c)
	var seed []variant
	for i, r := range rules {
		for bi, l := range r.Body {
			if l.Neg || lang.IsBuiltin(l.Pred) || changed[l.Tag()] == nil {
				continue
			}
			seed = append(seed, variant{rule: r, cr: crs[i], deltaOcc: bi})
		}
	}
	if len(seed) > 0 {
		if _, err := e.runRound(seed, changed, deltas, ksp); err != nil {
			return 0, err
		}
	}
	if !c.Recursive {
		return 0, nil
	}
	rounds := 0
	for iter := 0; ; iter++ {
		if iter >= e.opts.MaxIterations {
			return rounds, fmt.Errorf("%w: clique %v exceeded %d iterations", ErrRunaway, c.Preds, e.opts.MaxIterations)
		}
		if err := e.opts.Gov.AddIteration(); err != nil {
			return rounds, err
		}
		e.mu.Lock()
		e.Counters.Iterations++
		e.mu.Unlock()
		rounds++
		empty := true
		for _, d := range deltas {
			if d.Len() > 0 {
				empty = false
			}
		}
		if empty {
			return rounds, nil
		}
		var vs []variant
		for i, r := range rules {
			for bi, l := range r.Body {
				if l.Neg || lang.IsBuiltin(l.Pred) || !c.Contains(l.Tag()) {
					continue
				}
				vs = append(vs, variant{rule: r, cr: crs[i], deltaOcc: bi})
			}
		}
		next := make(map[string]*store.Relation, len(deltas))
		for p, d := range deltas {
			next[p] = store.NewRelationSized(p+"Δ", d.Arity, e.opts.SizeHints[p]/2)
		}
		if _, err := e.runRound(vs, deltas, next, ksp); err != nil {
			return rounds, err
		}
		deltas = next
	}
}

// diffDelta compares a scratch-recomputed relation against its prior
// epoch's extension. If prior ⊆ cur (the clique grew monotonically
// despite the fallback), it returns the rows of cur missing from prior
// as a delta and true; otherwise (genuine retraction) it returns
// (nil, false). A nil prior — the first materialization of the tag —
// counts as monotone growth from empty.
func diffDelta(prior, cur *store.Relation) (*store.Relation, bool) {
	if cur == nil {
		return nil, prior == nil || prior.Len() == 0
	}
	if prior == nil || prior.Len() == 0 {
		if cur.Len() == 0 {
			return nil, true
		}
		return cur.DeltaSince(0), true
	}
	if prior.Len() > cur.Len() {
		return nil, false
	}
	for i := 0; i < prior.Len(); i++ {
		if !cur.Contains(prior.TupleAt(i)) {
			return nil, false
		}
	}
	if cur.Len() == prior.Len() {
		return nil, true // identical extensions
	}
	d := store.NewRelationSized(cur.Name+"+", cur.Arity, cur.Len()-prior.Len())
	for i := 0; i < cur.Len(); i++ {
		if prior.Contains(cur.TupleAt(i)) {
			continue
		}
		if _, err := d.InsertFrom(cur, i); err != nil {
			panic(err) // same arity by construction
		}
	}
	return d, true
}
