// Package cost implements the optimizer's cost model (§6): per-node
// cost and cardinality estimates that are monotonically increasing in
// operand size, with +Inf encoding unsafe executions. The paper treats
// the concrete formulas as a system-dependent black box; this
// implementation uses Selinger-style selectivity estimation (1/distinct
// for bound columns, 1/max-distinct for join columns) over a
// CPU+IO-unit cost, and documents every formula so experiments are
// interpretable.
package cost

import (
	"fmt"
	"math"

	"ldl/internal/lang"
	"ldl/internal/stats"
	"ldl/internal/term"
)

// Cost is an abstract work unit (think: page IOs plus a CPU term).
type Cost float64

// Infinite is the cost of an unsafe execution.
func Infinite() Cost { return Cost(math.Inf(1)) }

// IsInfinite reports whether c encodes an unsafe execution.
func (c Cost) IsInfinite() bool { return math.IsInf(float64(c), 1) }

// JoinMethod labels how one body literal is merged into the tuples
// flowing from its left siblings (the paper's EL label choices).
type JoinMethod uint8

const (
	// MethodNone marks builtins/negation steps.
	MethodNone JoinMethod = iota
	// IndexNL probes an index on the literal's bound columns once per
	// incoming tuple (the pipelined join).
	IndexNL
	// ScanNL scans the whole relation once per incoming tuple.
	ScanNL
	// HashJoin builds a hash table on the relation once and probes it
	// per incoming tuple; needs at least one bound column.
	HashJoin
)

func (m JoinMethod) String() string {
	switch m {
	case IndexNL:
		return "index-nl"
	case ScanNL:
		return "scan-nl"
	case HashJoin:
		return "hash"
	default:
		return "-"
	}
}

// RecMethod labels the fixpoint method of a contracted clique node.
type RecMethod uint8

const (
	RecNaive RecMethod = iota
	RecSemiNaive
	RecMagic
	RecCounting
	// RecSupMagic is the supplementary-magic variant: prefixes are
	// materialized once in sup predicates instead of being re-evaluated
	// by both the magic rules and the modified rule.
	RecSupMagic
)

func (m RecMethod) String() string {
	switch m {
	case RecNaive:
		return "naive"
	case RecSemiNaive:
		return "seminaive"
	case RecMagic:
		return "magic"
	case RecCounting:
		return "counting"
	case RecSupMagic:
		return "supmagic"
	}
	return fmt.Sprintf("RecMethod(%d)", uint8(m))
}

// AllRecMethods lists every recursive method the system implements.
var AllRecMethods = []RecMethod{RecNaive, RecSemiNaive, RecMagic, RecCounting, RecSupMagic}

// Model prices executions against a catalog.
type Model struct {
	Cat *stats.Catalog

	// TupleCPU is the cost of touching one tuple.
	TupleCPU float64
	// ProbeIO is the cost of one index probe.
	ProbeIO float64
	// ScanIO is the per-tuple cost of a sequential scan (cheaper than
	// random probes per tuple, dearer than pure CPU).
	ScanIO float64
	// BuildCPU is the per-tuple cost of building a hash table.
	BuildCPU float64
	// MagicOverhead multiplies the work of magic-restricted evaluation
	// to account for computing and joining the magic predicates.
	MagicOverhead float64
	// CountingFactor is counting's advantage over magic where it
	// applies (it stores level numbers instead of binding sets).
	CountingFactor float64
	// SupMagicFactor is supplementary magic's advantage over plain
	// magic (rule prefixes are evaluated once, not twice).
	SupMagicFactor float64
}

// NewModel returns a model with the default constants used throughout
// the experiments.
func NewModel(cat *stats.Catalog) *Model {
	return &Model{
		Cat:            cat,
		TupleCPU:       1,
		ProbeIO:        4,
		ScanIO:         0.5,
		BuildCPU:       2,
		MagicOverhead:  2,
		CountingFactor: 0.6,
		SupMagicFactor: 0.85,
	}
}

// StatsFn supplies statistics for a literal; the optimizer passes a
// closure that resolves derived predicates to their memoized estimates
// and base predicates to the catalog.
type StatsFn func(l lang.Literal) stats.RelStats

// BaseStats is the StatsFn that consults only the catalog.
func (m *Model) BaseStats(l lang.Literal) stats.RelStats { return m.Cat.Stats(l.Tag()) }

// Step records the costing of one literal in a conjunct ordering.
type Step struct {
	Lit     lang.Literal
	Adorn   lang.Adornment
	Method  JoinMethod
	OutCard float64
	Cost    Cost
}

// ConjunctResult is the costing of a whole conjunct under one
// permutation.
type ConjunctResult struct {
	Total   Cost
	OutCard float64
	Steps   []Step
	// Safe is false when some goal violated EC at its position; Total
	// is then Infinite.
	Safe   bool
	Reason string
}

// Conjunct prices evaluating body in the order given by perm, starting
// from one incoming binding per initial tuple (inCard) with boundVars
// already instantiated. For each relational step the cheapest available
// join method is chosen locally — the paper's observation that "for a
// given permutation, the choice of join method becomes a local
// decision". A nil perm means identity order.
func (m *Model) Conjunct(body []lang.Literal, perm []int, boundVars map[string]bool, inCard float64, sf StatsFn) ConjunctResult {
	if sf == nil {
		sf = m.BaseStats
	}
	bound := map[string]bool{}
	for v := range boundVars {
		bound[v] = true
	}
	if perm == nil {
		perm = make([]int, len(body))
		for i := range perm {
			perm[i] = i
		}
	}
	res := ConjunctResult{Safe: true, OutCard: inCard}
	card := inCard
	if card < 1 {
		card = 1
	}
	// varDistinct tracks, for each bound variable, the distinct-value
	// count of the column that bound it, so join selectivity can use the
	// classic 1/max(d_left, d_right) symmetric formula.
	varDistinct := map[string]float64{}
	var total float64
	for _, bi := range perm {
		l := body[bi]
		ad := lang.AdornLiteral(l, bound)
		st := Step{Lit: l, Adorn: ad}
		switch {
		case lang.IsBuiltin(l.Pred):
			if !lang.BuiltinEC(l, bound) {
				res.Safe = false
				res.Reason = fmt.Sprintf("goal %s not effectively computable at its position", l)
				res.Total = Infinite()
				return res
			}
			total += card * m.TupleCPU
			if l.Pred == lang.OpEq && len(lang.BuiltinBinds(l, bound)) > 0 {
				// computes a value: one output per input
				for _, v := range lang.BuiltinBinds(l, bound) {
					bound[v] = true
				}
			} else {
				card *= lang.BuiltinSelectivity(l.Pred)
			}
		case l.Neg:
			for _, v := range l.Vars(nil) {
				if !bound[v.Name] {
					res.Safe = false
					res.Reason = fmt.Sprintf("negated goal %s has unbound variable %s", l, v.Name)
					res.Total = Infinite()
					return res
				}
			}
			total += card * m.ProbeIO
			card *= 0.5
		default:
			s := sf(l)
			mu := matchesPerBinding(l, ad, s, varDistinct)
			method, stepCost := m.bestJoin(card, s.Card, mu, ad)
			st.Method = method
			total += stepCost
			card *= mu
			l.VarSet(bound)
			for i, arg := range l.Args {
				if v, ok := arg.(term.Var); ok {
					d := s.DistinctAt(i)
					if prev, seen := varDistinct[v.Name]; !seen || d > prev {
						varDistinct[v.Name] = d
					}
				}
			}
		}
		if card < 0.001 {
			card = 0.001
		}
		st.OutCard = card
		st.Cost = Cost(total)
		res.Steps = append(res.Steps, st)
	}
	res.Total = Cost(total)
	res.OutCard = card
	return res
}

// matchesPerBinding estimates how many tuples of the literal's relation
// match one incoming binding: card restricted per bound column by the
// symmetric join selectivity 1/max(d_binder, d_column) (falling back to
// 1/d_column for constants and head bindings), and by repeated
// variables within the literal.
func matchesPerBinding(l lang.Literal, ad lang.Adornment, s stats.RelStats, varDistinct map[string]float64) float64 {
	mu := s.Card
	seen := map[string]int{}
	for i, arg := range l.Args {
		if ad.Bound(i) {
			d := s.DistinctAt(i)
			if v, ok := arg.(term.Var); ok {
				if db, ok := varDistinct[v.Name]; ok && db > d {
					d = db
				}
			}
			mu *= 1 / d
			continue
		}
		// A free variable repeated across free columns correlates them.
		if v, ok := arg.(term.Var); ok {
			if prev, dup := seen[v.Name]; dup {
				d := s.DistinctAt(i)
				if dp := s.DistinctAt(prev); dp > d {
					d = dp
				}
				mu *= 1 / d
			} else {
				seen[v.Name] = i
			}
		}
	}
	if mu < 0.001 {
		mu = 0.001
	}
	return mu
}

// bestJoin picks the cheapest join method available for the step (the
// EL exchange is thereby resolved locally).
func (m *Model) bestJoin(inCard, relCard, mu float64, ad lang.Adornment) (JoinMethod, float64) {
	scan := inCard * (relCard*m.ScanIO + mu*m.TupleCPU)
	best, bestCost := ScanNL, scan
	if ad != lang.AllFree {
		idx := inCard * (m.ProbeIO + mu*m.TupleCPU)
		if idx < bestCost {
			best, bestCost = IndexNL, idx
		}
		hash := relCard*m.BuildCPU + inCard*(m.TupleCPU+mu*m.TupleCPU)
		if hash < bestCost {
			best, bestCost = HashJoin, hash
		}
	}
	return best, bestCost
}

// UnionCost prices merging k child results with the given cardinalities
// (duplicate elimination touches every tuple once).
func (m *Model) UnionCost(cards []float64) (Cost, float64) {
	var total, out float64
	for _, c := range cards {
		total += c * m.TupleCPU
		out += c
	}
	return Cost(total), out
}
