package cost

import (
	"fmt"

	"ldl/internal/adorn"
	"ldl/internal/lang"
	"ldl/internal/stats"
	"ldl/internal/term"
)

// CliqueCosting prices one recursive method for one adorned clique.
type CliqueCosting struct {
	Method RecMethod
	Total  Cost
	// OutCard is the estimated number of queried-predicate tuples
	// relevant to the subquery (after the binding restriction).
	OutCard float64
	// FixCard is the estimated full fixpoint cardinality.
	FixCard float64
	Safe    bool
	Reason  string
}

// Clique estimates the cost of computing the adorned clique's subquery
// with the given recursive method, per §6's requirements: monotone in
// operand sizes and infinite when the execution cannot be carried out.
//
// The estimation procedure (documented here because the paper leaves
// formulas open):
//
//  1. E, the exit cardinality, sums the output of the clique's
//     non-recursive (exit) rule replicas evaluated bottom-up.
//  2. One recursive round at clique cardinality C prices every
//     recursive replica's body as a conjunct, with in-clique literals
//     given stats {Card: C, Distinct_i: min(C, dom)} where dom is the
//     largest distinct count seen in the clique's base literals (a
//     domain-size proxy).
//  3. The growth ratio g compares one round's output at C=E against E;
//     the fixpoint cardinality F is the geometric sum of D =
//     Catalog.RecursionDepth rounds, capped to keep the model finite.
//  4. naive evaluates every round from scratch: D × round(F) + exit.
//     seminaive touches each delta once: round(F) + exit.
//     magic multiplies seminaive by the binding selectivity σ =
//     Π_bound 1/min(F, dom) and by MagicOverhead.
//     counting, where CanCount approves, is magic × CountingFactor.
func (m *Model) Clique(a *adorn.Adorned, method RecMethod, sf StatsFn) CliqueCosting {
	if sf == nil {
		sf = m.BaseStats
	}
	out := CliqueCosting{Method: method, Safe: true}

	dom := m.domainEstimate(a, sf)
	D := m.Cat.RecursionDepth
	if D < 1 {
		D = 1
	}

	topDown := method == RecMagic || method == RecCounting || method == RecSupMagic

	// Bottom-up methods evaluate each original rule once per round; the
	// adorned replicas exist only for binding-driven methods. Keep one
	// replica per source rule (the first generated, i.e. the one on the
	// query's adornment chain) when costing bottom-up.
	replicas := a.Rules
	if !topDown {
		seen := map[int]bool{}
		var once []adorn.AdornedRule
		for _, ar := range a.Rules {
			if seen[ar.Orig] {
				continue
			}
			seen[ar.Orig] = true
			once = append(once, ar)
		}
		replicas = once
	}

	// Exit cardinality and cost.
	var exitCard, exitCost float64
	for _, ar := range replicas {
		if hasRecursiveLiteral(a, ar) {
			continue
		}
		cr := m.adornedRuleConjunct(a, ar, topDown, 1, sf)
		if !cr.Safe {
			return unsafeCosting(method, cr.Reason)
		}
		exitCard += cr.OutCard
		exitCost += float64(cr.Total)
	}
	if exitCard < 1 {
		exitCard = 1
	}

	round := func(C float64) (float64, float64, bool, string) {
		var cardSum, costSum float64
		for _, ar := range replicas {
			if !hasRecursiveLiteral(a, ar) {
				continue
			}
			cliqueSF := func(l lang.Literal) stats.RelStats {
				if _, ok := a.PredAdorn[l.Pred]; ok {
					return cliqueStats(C, dom, l.Arity())
				}
				return sf(l)
			}
			cr := m.adornedRuleConjunctWith(a, ar, topDown, 1, cliqueSF)
			if !cr.Safe {
				return 0, 0, false, cr.Reason
			}
			cardSum += cr.OutCard
			costSum += float64(cr.Total)
		}
		return cardSum, costSum, true, ""
	}

	oneRound, _, ok, reason := round(exitCard)
	if !ok {
		return unsafeCosting(method, reason)
	}
	g := oneRound / exitCard
	F := fixpointCard(exitCard, g, D)
	out.FixCard = F

	_, roundCostF, ok, reason := round(F)
	if !ok {
		return unsafeCosting(method, reason)
	}

	semiCost := roundCostF + exitCost
	sigma := bindingSelectivity(a.QueryAdorn, queryArity(a), F, dom)
	var total float64
	switch method {
	case RecNaive:
		total = D*roundCostF + exitCost
		out.OutCard = F * sigma
	case RecSemiNaive:
		total = semiCost
		out.OutCard = F * sigma
	case RecMagic, RecCounting, RecSupMagic:
		// The top-down conjunct costing above already restricted every
		// round to the bindings reachable from the query (head bound
		// variables flowed sideways), so F and semiCost describe the
		// magic-restricted computation; the overhead factor pays for
		// maintaining the magic predicates themselves.
		total = m.MagicOverhead * semiCost
		if method == RecCounting {
			if !adorn.CanCount(a) {
				return unsafeCosting(method, "counting method not applicable to this adorned program")
			}
			if !countingDataSafe(a, replicas, sf) {
				return unsafeCosting(method, "counting method requires acyclic data in the recursive rules' base relations")
			}
			total *= m.CountingFactor
		}
		if method == RecSupMagic {
			// Sup predicates only pay off when rule prefixes are long
			// enough that plain magic's double evaluation hurts; with
			// single-literal prefixes they are pure overhead.
			if longestRecursivePrefix(a, replicas) >= 2 {
				total *= m.SupMagicFactor
			} else {
				total *= 1.1
			}
		}
		out.OutCard = F
	}
	out.Total = Cost(total)
	if out.OutCard < 1 {
		out.OutCard = 1
	}
	return out
}

// BestCliqueMethod prices every applicable method and returns the
// cheapest costing (ties broken by method order: the simpler wins).
func (m *Model) BestCliqueMethod(a *adorn.Adorned, sf StatsFn) CliqueCosting {
	best := CliqueCosting{Safe: false, Reason: "no applicable method", Total: Infinite()}
	for _, meth := range AllRecMethods {
		c := m.Clique(a, meth, sf)
		if !c.Safe {
			continue
		}
		if !best.Safe || c.Total < best.Total {
			best = c
		}
	}
	return best
}

// countingDataSafe checks the counting method's data-side
// applicability condition: every base relation joined inside a
// recursive rule must be acyclic (per the catalog), or the level
// counter can grow without bound. Derived out-of-clique predicates
// default to non-acyclic and conservatively disable counting.
func countingDataSafe(a *adorn.Adorned, replicas []adorn.AdornedRule, sf StatsFn) bool {
	for _, ar := range replicas {
		if !hasRecursiveLiteral(a, ar) {
			continue
		}
		for _, bl := range ar.Rule.Body {
			if bl.Neg || lang.IsBuiltin(bl.Pred) {
				continue
			}
			if _, inClique := a.PredAdorn[bl.Pred]; inClique {
				continue
			}
			if !sf(bl).Acyclic {
				return false
			}
		}
	}
	return true
}

// longestRecursivePrefix returns the maximum number of body literals
// preceding the first in-clique literal across recursive replicas.
func longestRecursivePrefix(a *adorn.Adorned, replicas []adorn.AdornedRule) int {
	longest := 0
	for _, ar := range replicas {
		for i, bl := range ar.Rule.Body {
			if _, ok := a.PredAdorn[bl.Pred]; ok {
				if i > longest {
					longest = i
				}
				break
			}
		}
	}
	return longest
}

func unsafeCosting(method RecMethod, reason string) CliqueCosting {
	return CliqueCosting{Method: method, Total: Infinite(), Safe: false, Reason: reason}
}

func queryArity(a *adorn.Adorned) int {
	for _, ar := range a.Rules {
		if a.OrigOf[ar.Rule.Head.Pred] == a.QueryTag {
			return ar.Rule.Head.Arity()
		}
	}
	return 0
}

func hasRecursiveLiteral(a *adorn.Adorned, ar adorn.AdornedRule) bool {
	for _, bl := range ar.Rule.Body {
		if _, ok := a.PredAdorn[bl.Pred]; ok {
			return true
		}
	}
	return false
}

// adornedRuleConjunct prices an adorned rule body (already in SIP
// order). topDown includes the head's bound variables as initial
// bindings (the sideways information magic would provide); bottom-up
// starts unbound.
func (m *Model) adornedRuleConjunct(a *adorn.Adorned, ar adorn.AdornedRule, topDown bool, inCard float64, sf StatsFn) ConjunctResult {
	return m.adornedRuleConjunctWith(a, ar, topDown, inCard, sf)
}

func (m *Model) adornedRuleConjunctWith(a *adorn.Adorned, ar adorn.AdornedRule, topDown bool, inCard float64, sf StatsFn) ConjunctResult {
	bound := map[string]bool{}
	if topDown {
		for i, arg := range ar.Rule.Head.Args {
			if ar.HeadAdorn.Bound(i) {
				term.VarSet(arg, bound)
			}
		}
	}
	return m.Conjunct(ar.Rule.Body, nil, bound, inCard, sf)
}

// cliqueStats synthesizes statistics for an in-clique predicate at
// assumed cardinality C.
func cliqueStats(C, dom float64, arity int) stats.RelStats {
	d := make([]float64, arity)
	for i := range d {
		d[i] = minf(C, dom)
		if d[i] < 1 {
			d[i] = 1
		}
	}
	if C < 1 {
		C = 1
	}
	return stats.RelStats{Card: C, Distinct: d}
}

// domainEstimate proxies the active domain size: the largest distinct
// count among base (non-clique) literal columns in the clique's rules.
func (m *Model) domainEstimate(a *adorn.Adorned, sf StatsFn) float64 {
	dom := 1.0
	for _, ar := range a.Rules {
		for _, bl := range ar.Rule.Body {
			if _, ok := a.PredAdorn[bl.Pred]; ok {
				continue
			}
			if bl.Neg || lang.IsBuiltin(bl.Pred) {
				continue
			}
			s := sf(bl)
			for i := 0; i < bl.Arity(); i++ {
				if d := s.DistinctAt(i); d > dom {
					dom = d
				}
			}
		}
	}
	return dom
}

func bindingSelectivity(ad lang.Adornment, arity int, F, dom float64) float64 {
	sigma := 1.0
	for i := 0; i < arity; i++ {
		if ad.Bound(i) {
			sigma *= 1 / minf(maxf(F, 1), maxf(dom, 1))
		}
	}
	if sigma > 1 {
		sigma = 1
	}
	return sigma
}

// fixpointCard sums the geometric growth over D rounds, capped.
func fixpointCard(E, g, D float64) float64 {
	const ceiling = 1e12
	var F float64
	switch {
	case g <= 0:
		F = E
	case g > 0.999 && g < 1.001:
		F = E * D
	default:
		F = E * (powf(g, D) - 1) / (g - 1)
	}
	if F < E {
		F = E
	}
	if F > ceiling {
		F = ceiling
	}
	return F
}

func powf(b, e float64) float64 {
	r := 1.0
	for i := 0; i < int(e); i++ {
		r *= b
		if r > 1e12 {
			return 1e12
		}
	}
	return r
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// String renders a costing for Explain output.
func (c CliqueCosting) String() string {
	if !c.Safe {
		return fmt.Sprintf("%s: UNSAFE (%s)", c.Method, c.Reason)
	}
	return fmt.Sprintf("%s: cost=%.1f out=%.1f fix=%.1f", c.Method, float64(c.Total), c.OutCard, c.FixCard)
}
