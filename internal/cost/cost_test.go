package cost

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ldl/internal/adorn"
	"ldl/internal/lang"
	"ldl/internal/parser"
	"ldl/internal/stats"
)

func model() *Model {
	cat := stats.NewCatalog()
	cat.Set("e/2", stats.RelStats{Card: 1000, Distinct: []float64{100, 100}})
	cat.Set("big/2", stats.RelStats{Card: 100000, Distinct: []float64{1000, 1000}})
	cat.Set("small/2", stats.RelStats{Card: 10, Distinct: []float64{10, 10}})
	cat.Set("up/2", stats.RelStats{Card: 500, Distinct: []float64{250, 250}, Acyclic: true})
	cat.Set("dn/2", stats.RelStats{Card: 500, Distinct: []float64{250, 250}, Acyclic: true})
	cat.Set("flat/2", stats.RelStats{Card: 50, Distinct: []float64{50, 50}, Acyclic: true})
	return NewModel(cat)
}

func body(t *testing.T, src string) []lang.Literal {
	t.Helper()
	prog, _, err := parser.ParseProgram("h(X) <- " + src + ".")
	if err != nil {
		t.Fatal(err)
	}
	return prog.Rules[0].Body
}

func TestCostBasics(t *testing.T) {
	if !Infinite().IsInfinite() {
		t.Error("Infinite not infinite")
	}
	if Cost(5).IsInfinite() {
		t.Error("finite cost infinite")
	}
	for _, m := range []JoinMethod{MethodNone, IndexNL, ScanNL, HashJoin} {
		if m.String() == "" {
			t.Error("empty method name")
		}
	}
	for _, m := range AllRecMethods {
		if m.String() == "" || strings.HasPrefix(m.String(), "RecMethod") {
			t.Errorf("method name %q", m.String())
		}
	}
	if RecMethod(99).String() != "RecMethod(99)" {
		t.Error("unknown method string")
	}
}

func TestConjunctSelectiveFirstIsCheaper(t *testing.T) {
	m := model()
	// small(X, Y), big(Y, Z): starting from small is far cheaper.
	b := body(t, "small(X, Y), big(Y, Z)")
	fwd := m.Conjunct(b, []int{0, 1}, nil, 1, nil)
	rev := m.Conjunct(b, []int{1, 0}, nil, 1, nil)
	if !fwd.Safe || !rev.Safe {
		t.Fatalf("safety: %v %v", fwd, rev)
	}
	if fwd.Total >= rev.Total {
		t.Errorf("small-first %.1f not cheaper than big-first %.1f", fwd.Total, rev.Total)
	}
	// Cardinality estimate must not depend on the order.
	ratio := fwd.OutCard / rev.OutCard
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("out cards differ: %.2f vs %.2f", fwd.OutCard, rev.OutCard)
	}
}

func TestConjunctBoundQueryCheaper(t *testing.T) {
	m := model()
	b := body(t, "e(X, Y), e(Y, Z)")
	free := m.Conjunct(b, nil, nil, 1, nil)
	boundX := m.Conjunct(b, nil, map[string]bool{"X": true}, 1, nil)
	if boundX.Total >= free.Total {
		t.Errorf("bound %.1f not cheaper than free %.1f", boundX.Total, free.Total)
	}
	if boundX.OutCard >= free.OutCard {
		t.Errorf("bound card %.1f not smaller than free %.1f", boundX.OutCard, free.OutCard)
	}
}

func TestConjunctUnsafeBuiltin(t *testing.T) {
	m := model()
	b := body(t, "e(X, Y), Z > Y")
	r := m.Conjunct(b, nil, nil, 1, nil)
	if r.Safe || !r.Total.IsInfinite() {
		t.Errorf("unsafe conjunct accepted: %+v", r)
	}
	// Same goals, Z pre-bound: safe.
	r2 := m.Conjunct(b, nil, map[string]bool{"Z": true}, 1, nil)
	if !r2.Safe {
		t.Errorf("bound comparison rejected: %s", r2.Reason)
	}
	// Unbound negation is unsafe.
	bn := body(t, "not e(X, Y)")
	if r := m.Conjunct(bn, nil, nil, 1, nil); r.Safe {
		t.Error("unbound negation accepted")
	}
	bn2 := body(t, "e(X, Y), not e(Y, X)")
	if r := m.Conjunct(bn2, nil, nil, 1, nil); !r.Safe {
		t.Errorf("bound negation rejected: %s", r.Reason)
	}
}

func TestConjunctBuiltinStepsAndMethods(t *testing.T) {
	m := model()
	b := body(t, "e(X, Y), Y > 3, Z = Y + 1, small(Z, W)")
	r := m.Conjunct(b, nil, nil, 1, nil)
	if !r.Safe {
		t.Fatalf("unsafe: %s", r.Reason)
	}
	if len(r.Steps) != 4 {
		t.Fatalf("steps = %d", len(r.Steps))
	}
	if r.Steps[1].Method != MethodNone || r.Steps[2].Method != MethodNone {
		t.Error("builtin steps have join methods")
	}
	if r.Steps[3].Method == MethodNone {
		t.Error("relation step has no join method")
	}
	// Comparison reduces cardinality; '=' preserves it.
	if !(r.Steps[1].OutCard < r.Steps[0].OutCard) {
		t.Error("comparison did not reduce cardinality")
	}
	if r.Steps[2].OutCard != r.Steps[1].OutCard {
		t.Error("= changed cardinality")
	}
}

func TestBestJoinMethodChoice(t *testing.T) {
	m := model()
	// Huge incoming stream + bound column: hash beats per-tuple probes
	// when inCard is large relative to relation size.
	meth, _ := m.bestJoin(1e6, 1000, 1, lang.AllBound(1))
	if meth != HashJoin {
		t.Errorf("large stream method = %v", meth)
	}
	// Single incoming tuple: index probe wins.
	meth, _ = m.bestJoin(1, 1000, 1, lang.AllBound(1))
	if meth != IndexNL {
		t.Errorf("single-tuple method = %v", meth)
	}
	// No bound columns: only scan applies.
	meth, _ = m.bestJoin(10, 1000, 1000, lang.AllFree)
	if meth != ScanNL {
		t.Errorf("free method = %v", meth)
	}
}

func TestUnionCost(t *testing.T) {
	m := model()
	c, card := m.UnionCost([]float64{10, 20, 30})
	if card != 60 || c <= 0 {
		t.Errorf("union = %v %v", c, card)
	}
}

func sgAdorned(t *testing.T, pattern string) *adorn.Adorned {
	t.Helper()
	prog, _, err := parser.ParseProgram(`
sg(X, Y) <- flat(X, Y).
sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := lang.ParseAdornment(pattern)
	if err != nil {
		t.Fatal(err)
	}
	a, err := adorn.Adorn(prog.Rules, func(tag string) bool { return tag == "sg/2" }, "sg/2", ad, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCliqueMethodOrderingBoundQuery(t *testing.T) {
	m := model()
	a := sgAdorned(t, "bf")
	var costs []CliqueCosting
	for _, meth := range AllRecMethods {
		c := m.Clique(a, meth, nil)
		if !c.Safe {
			t.Fatalf("%v unsafe: %s", meth, c.Reason)
		}
		costs = append(costs, c)
	}
	naive, semi, magic, counting := costs[0], costs[1], costs[2], costs[3]
	if !(semi.Total < naive.Total) {
		t.Errorf("seminaive %.1f not cheaper than naive %.1f", semi.Total, naive.Total)
	}
	if !(magic.Total < semi.Total) {
		t.Errorf("magic %.1f not cheaper than seminaive %.1f for bound query", magic.Total, semi.Total)
	}
	if !(counting.Total < magic.Total) {
		t.Errorf("counting %.1f not cheaper than magic %.1f", counting.Total, magic.Total)
	}
	best := m.BestCliqueMethod(a, nil)
	if best.Method != RecCounting {
		t.Errorf("best method = %v", best.Method)
	}
	if !strings.Contains(best.String(), "counting") {
		t.Errorf("String = %q", best.String())
	}
}

func TestCliqueSupMagicPrefixSensitivity(t *testing.T) {
	m := model()
	// sg's recursive rule has a single-literal prefix (up), so the sup
	// relations are pure overhead: supmagic must price above magic.
	a := sgAdorned(t, "bf")
	magic := m.Clique(a, RecMagic, nil)
	sup := m.Clique(a, RecSupMagic, nil)
	if !magic.Safe || !sup.Safe {
		t.Fatalf("safety: %v %v", magic, sup)
	}
	if sup.Total <= magic.Total {
		t.Errorf("short-prefix supmagic %.1f not dearer than magic %.1f", sup.Total, magic.Total)
	}
	// A two-literal prefix flips the comparison.
	prog, _, err := parser.ParseProgram(`
p(X, Y) <- flat(X, Y).
p(X, Y) <- up(X, A), dn(A, B), p(B, Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := lang.ParseAdornment("bf")
	a2, err := adorn.Adorn(prog.Rules, func(tag string) bool { return tag == "p/2" }, "p/2", bf, nil)
	if err != nil {
		t.Fatal(err)
	}
	magic2 := m.Clique(a2, RecMagic, nil)
	sup2 := m.Clique(a2, RecSupMagic, nil)
	if sup2.Total >= magic2.Total {
		t.Errorf("long-prefix supmagic %.1f not cheaper than magic %.1f", sup2.Total, magic2.Total)
	}
}

func TestCliqueFreeQueryPrefersSemiNaive(t *testing.T) {
	m := model()
	a := sgAdorned(t, "ff")
	best := m.BestCliqueMethod(a, nil)
	if best.Method != RecSemiNaive {
		t.Errorf("best for all-free = %v (%s)", best.Method, best)
	}
}

func TestCliqueCountingInapplicable(t *testing.T) {
	m := model()
	prog, _, err := parser.ParseProgram(`
d(X, Y) <- e(X, Y).
d(X, Y) <- d(X, Z), d(Z, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := lang.ParseAdornment("bf")
	a, err := adorn.Adorn(prog.Rules, func(tag string) bool { return tag == "d/2" }, "d/2", bf, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clique(a, RecCounting, nil)
	if c.Safe {
		t.Error("counting costed for nonlinear clique")
	}
	if !strings.Contains(c.String(), "UNSAFE") {
		t.Errorf("String = %q", c.String())
	}
	best := m.BestCliqueMethod(a, nil)
	if !best.Safe || best.Method == RecCounting {
		t.Errorf("best = %+v", best)
	}
}

func TestCliqueUnsafeBuiltinPropagates(t *testing.T) {
	m := model()
	prog, _, err := parser.ParseProgram(`n(Y) <- n(X), Y = X + 1.
n(X) <- seed(X).`)
	if err != nil {
		t.Fatal(err)
	}
	// Bottom-up EC is fine here (X bound by n before the builtin), so
	// cost stays finite; safety (well-foundedness) is the optimizer's
	// job. But reversing the SIP makes the builtin non-EC: infinite.
	b, _ := lang.ParseAdornment("f")
	a, err := adorn.Adorn(prog.Rules, func(tag string) bool { return tag == "n/1" }, "n/1", b,
		adorn.UniformCPerm([][]int{{1, 0}, {0}}))
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clique(a, RecSemiNaive, nil)
	if c.Safe || !c.Total.IsInfinite() {
		t.Errorf("non-EC SIP accepted: %+v", c)
	}
}

func TestQuickCostMonotoneInCard(t *testing.T) {
	// Property: conjunct cost and out-cardinality are monotone in the
	// incoming cardinality (§6: "monotonically increasing function on
	// the size of the operands").
	m := model()
	b := body(t, "e(X, Y), e(Y, Z), Z > 0")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c1 := float64(1 + r.Intn(1000))
		c2 := c1 + float64(1+r.Intn(1000))
		r1 := m.Conjunct(b, nil, map[string]bool{"X": true}, c1, nil)
		r2 := m.Conjunct(b, nil, map[string]bool{"X": true}, c2, nil)
		return r1.Total <= r2.Total && r1.OutCard <= r2.OutCard
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCliqueMethodShapes(t *testing.T) {
	// Property: across random catalog states, every method costs finite
	// and positive on the sg clique, seminaive never beats naive is
	// false (seminaive <= naive), and magic never loses to seminaive on
	// a fully bound query. (Global monotonicity in base cardinality is
	// NOT required by §6 — a larger domain legitimately makes a fixed
	// binding more selective.)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c1 := float64(10 + r.Intn(1000))
		c2 := c1 * (1 + float64(r.Intn(5)))
		mk := func(card float64) *Model {
			cat := stats.NewCatalog()
			cat.Set("up/2", stats.RelStats{Card: card, Distinct: []float64{card / 2, card / 2}})
			cat.Set("dn/2", stats.RelStats{Card: card, Distinct: []float64{card / 2, card / 2}})
			cat.Set("flat/2", stats.RelStats{Card: 50, Distinct: []float64{50, 50}})
			return NewModel(cat)
		}
		prog, _, err := parser.ParseProgram(`
sg(X, Y) <- flat(X, Y).
sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).`)
		if err != nil {
			return false
		}
		bf, _ := lang.ParseAdornment("bf")
		a, err := adorn.Adorn(prog.Rules, func(tag string) bool { return tag == "sg/2" }, "sg/2", bf, nil)
		if err != nil {
			return false
		}
		_ = c2
		m1 := mk(c1)
		naive := m1.Clique(a, RecNaive, nil)
		semi := m1.Clique(a, RecSemiNaive, nil)
		magic := m1.Clique(a, RecMagic, nil)
		if !naive.Safe || !semi.Safe || !magic.Safe {
			return false
		}
		if naive.Total <= 0 || naive.Total.IsInfinite() {
			return false
		}
		if semi.Total > naive.Total {
			return false
		}
		bb, _ := lang.ParseAdornment("bb")
		a2, err := adorn.Adorn(prog.Rules, func(tag string) bool { return tag == "sg/2" }, "sg/2", bb, nil)
		if err != nil {
			return false
		}
		m2 := mk(c1)
		semiBB := m2.Clique(a2, RecSemiNaive, nil)
		magicBB := m2.Clique(a2, RecMagic, nil)
		return magicBB.Total <= semiBB.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
