package parser

import (
	"fmt"
	"strconv"

	"ldl/internal/lang"
	"ldl/internal/term"
)

// Result is the outcome of parsing a source file: the program clauses
// (rules and facts) and any query forms ("goal?" lines).
type Result struct {
	Clauses []lang.Rule
	Queries []lang.Query
}

// Parse parses LDL source text.
func Parse(src string) (*Result, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	res := &Result{}
	for p.tok.kind != tokEOF {
		if err := p.clause(res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ParseProgram parses source text and builds a validated Program plus
// the queries it contains.
func ParseProgram(src string) (*lang.Program, []lang.Query, error) {
	res, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	prog, err := lang.NewProgram(res.Clauses)
	if err != nil {
		return nil, nil, err
	}
	return prog, res.Queries, nil
}

// ParseLiteral parses a single literal, e.g. "sg(john, Y)".
func ParseLiteral(src string) (lang.Literal, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return lang.Literal{}, err
	}
	l, err := p.literal()
	if err != nil {
		return lang.Literal{}, err
	}
	if p.tok.kind != tokEOF {
		return lang.Literal{}, p.errf("unexpected %s after literal", p.tok)
	}
	return l, nil
}

// ParseTerm parses a single term, e.g. "f(a, [1,2|T])".
func ParseTerm(src string) (term.Term, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	t, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s after term", p.tok)
	}
	return t, nil
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parser: %d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errf("expected %q, found %s", s, p.tok)
	}
	return p.advance()
}

func (p *parser) isPunct(s string) bool { return p.tok.kind == tokPunct && p.tok.text == s }
func (p *parser) isOp(s string) bool    { return p.tok.kind == tokOp && p.tok.text == s }

// clause ::= literal [ "<-" literal { "," literal } ] "." | literal "?"
func (p *parser) clause(res *Result) error {
	head, err := p.literal()
	if err != nil {
		return err
	}
	if p.isPunct("?") {
		if err := p.advance(); err != nil {
			return err
		}
		res.Queries = append(res.Queries, lang.Query{Goal: head})
		return nil
	}
	rule := lang.Rule{Head: head}
	if head.Neg {
		return p.errf("negated literal cannot head a clause")
	}
	if p.isOp("<-") {
		if err := p.advance(); err != nil {
			return err
		}
		for {
			l, err := p.literal()
			if err != nil {
				return err
			}
			rule.Body = append(rule.Body, l)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return err
				}
				continue
			}
			break
		}
	}
	if err := p.expectPunct("."); err != nil {
		return err
	}
	res.Clauses = append(res.Clauses, rule)
	return nil
}

// literal ::= ["not"|"~"] ( atom [ "(" expr {"," expr} ")" ] | expr relop expr )
func (p *parser) literal() (lang.Literal, error) {
	neg := false
	if (p.tok.kind == tokAtom && p.tok.text == "not") || p.isOp("~") {
		neg = true
		if err := p.advance(); err != nil {
			return lang.Literal{}, err
		}
	}
	// An atom followed by '(' is a predicate application; but it might
	// also be the left side of a comparison (e.g. a = X). Parse an
	// expression first, then look for a relational operator.
	lhs, predLit, err := p.literalHead()
	if err != nil {
		return lang.Literal{}, err
	}
	if predLit != nil {
		predLit.Neg = neg
		// Allow a comparison whose left side happens to parse as a
		// 0-ary predicate (a bare atom): handled inside literalHead.
		return *predLit, nil
	}
	// Must be a comparison literal.
	op := ""
	if p.tok.kind == tokOp {
		switch p.tok.text {
		case lang.OpEq, lang.OpNe, lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe:
			op = p.tok.text
		}
	}
	if op == "" {
		return lang.Literal{}, p.errf("expected comparison operator, found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return lang.Literal{}, err
	}
	rhs, err := p.expr()
	if err != nil {
		return lang.Literal{}, err
	}
	return lang.Literal{Pred: op, Args: []term.Term{lhs, rhs}, Neg: neg}, nil
}

// literalHead parses either a predicate application (returned as a
// literal) or the left-hand expression of a comparison.
func (p *parser) literalHead() (term.Term, *lang.Literal, error) {
	if p.tok.kind == tokAtom {
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, nil, err
		}
		if p.isPunct("(") {
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
			var args []term.Term
			for {
				a, err := p.expr()
				if err != nil {
					return nil, nil, err
				}
				args = append(args, a)
				if p.isPunct(",") {
					if err := p.advance(); err != nil {
						return nil, nil, err
					}
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, nil, err
			}
			// If a comparison operator follows, this was a compound term
			// on the left of a comparison, e.g. f(X) = Y.
			if p.tok.kind == tokOp && isRelOp(p.tok.text) {
				return term.Comp{Functor: name, Args: args}, nil, nil
			}
			l := lang.Literal{Pred: name, Args: args}
			return nil, &l, nil
		}
		// Bare atom: propositional literal unless a comparison follows.
		if p.tok.kind == tokOp && isRelOp(p.tok.text) {
			return term.Atom(name), nil, nil
		}
		l := lang.Literal{Pred: name}
		return nil, &l, nil
	}
	lhs, err := p.expr()
	if err != nil {
		return nil, nil, err
	}
	return lhs, nil, nil
}

func isRelOp(s string) bool {
	switch s {
	case lang.OpEq, lang.OpNe, lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe:
		return true
	}
	return false
}

// Expression grammar with standard precedence:
//
//	expr   ::= mul { ("+"|"-") mul }
//	mul    ::= pow { ("*"|"/"|"mod") pow }
//	pow    ::= unary [ "^" pow ]           (right associative)
//	unary  ::= "-" unary | primary
//	primary::= int | string | var | atom [ "(" expr {,expr} ")" ] |
//	           "[" list "]" | "(" expr ")"
func (p *parser) expr() (term.Term, error) {
	t, err := p.mul()
	if err != nil {
		return nil, err
	}
	for p.isOp("+") || p.isOp("-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.mul()
		if err != nil {
			return nil, err
		}
		t = term.Comp{Functor: op, Args: []term.Term{t, r}}
	}
	return t, nil
}

func (p *parser) mul() (term.Term, error) {
	t, err := p.pow()
	if err != nil {
		return nil, err
	}
	for p.isOp("*") || p.isOp("/") || p.isOp("mod") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.pow()
		if err != nil {
			return nil, err
		}
		t = term.Comp{Functor: op, Args: []term.Term{t, r}}
	}
	return t, nil
}

func (p *parser) pow() (term.Term, error) {
	t, err := p.unary()
	if err != nil {
		return nil, err
	}
	if p.isOp("^") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.pow()
		if err != nil {
			return nil, err
		}
		return term.Comp{Functor: "^", Args: []term.Term{t, r}}, nil
	}
	return t, nil
}

func (p *parser) unary() (term.Term, error) {
	if p.isOp("-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.unary()
		if err != nil {
			return nil, err
		}
		if i, ok := t.(term.Int); ok {
			return term.Int(-i), nil
		}
		return term.Comp{Functor: "neg", Args: []term.Term{t}}, nil
	}
	return p.primary()
}

func (p *parser) primary() (term.Term, error) {
	switch p.tok.kind {
	case tokInt:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return term.Int(v), nil
	case tokStr:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return term.Str(s), nil
	case tokVar:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return term.Var{Name: name}, nil
	case tokAtom:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isPunct("(") {
			return term.Atom(name), nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var args []term.Term
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return term.Comp{Functor: name, Args: args}, nil
	case tokPunct:
		switch p.tok.text {
		case "[":
			return p.list()
		case "(":
			if err := p.advance(); err != nil {
				return nil, err
			}
			t, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return t, nil
		}
	}
	return nil, p.errf("expected a term, found %s", p.tok)
}

// list ::= "[" "]" | "[" expr {"," expr} [ "|" expr ] "]"
func (p *parser) list() (term.Term, error) {
	if err := p.advance(); err != nil { // consume '['
		return nil, err
	}
	if p.isPunct("]") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		return term.EmptyList, nil
	}
	var elems []term.Term
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	tail := term.Term(term.EmptyList)
	if p.isPunct("|") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.expr()
		if err != nil {
			return nil, err
		}
		tail = t
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	for i := len(elems) - 1; i >= 0; i-- {
		tail = term.Cons(elems[i], tail)
	}
	return tail, nil
}
