package parser

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParseProgram asserts the parser's total-function contract: any
// input string either parses or returns an error — it never panics and
// never loops. Successful parses are additionally rendered back through
// the printer and re-parsed; the rendering may legitimately fail to
// re-parse (the printer emits arithmetic in prefix form), but it must
// not panic either.
func FuzzParseProgram(f *testing.F) {
	// Seed with the raw-string program embedded in each example, so the
	// corpus starts from realistic LDL source.
	matches, _ := filepath.Glob(filepath.Join("..", "..", "examples", "*", "main.go"))
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			continue
		}
		src := string(data)
		if i := strings.IndexByte(src, '`'); i >= 0 {
			if j := strings.LastIndexByte(src, '`'); j > i {
				f.Add(src[i+1 : j])
			}
		}
	}
	f.Add(`e(1,2). tc(X,Y) <- e(X,Y). tc(X,Y) <- e(X,Z), tc(Z,Y). tc(1,Y)?`)
	f.Add(`p(X,Y) <- q(X,Z), ~r(Z), Y = Z+1.`)
	f.Add(`len([],0). len([H|T],N) <- len(T,M), N = M+1. len([a,b,c],N)?`)
	f.Add(`f(g(h(1),[2|X]),"str") <- X = [3].`)
	f.Add(`p(`)
	f.Add(`p(X) <- `)
	f.Add(`1 2 3 . ? <- ~~`)
	f.Add("p(a).\n% comment\nq(X) <- p(X).")
	f.Fuzz(func(t *testing.T, src string) {
		prog, queries, err := ParseProgram(src)
		if err != nil {
			return
		}
		// Feed the printer's output back in: exercises the renderer on
		// arbitrary accepted programs and the parser on its output.
		var b strings.Builder
		for _, r := range prog.Rules {
			b.WriteString(r.String())
			b.WriteString("\n")
		}
		for _, fa := range prog.Facts {
			b.WriteString(fa.String())
			b.WriteString("\n")
		}
		for _, q := range queries {
			b.WriteString(q.String())
			b.WriteString("\n")
		}
		ParseProgram(b.String())
	})
}
