// Package parser turns LDL surface syntax into lang.Rule values. The
// syntax follows the paper's examples:
//
//	sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
//	up(a, b).
//	p(X, Y, Z) <- X = 3, Z = X + Y.
//	sg(john, Y)?
//
// Variables start with an upper-case letter or '_'; atoms with a
// lower-case letter; lists use [a, b | T]; '%' starts a line comment.
// Stratified negation is written "not p(X)".
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokAtom
	tokVar
	tokInt
	tokStr
	tokPunct // ( ) [ ] , | . ?
	tokOp    // <- = \= < =< > >= + - * / ^ mod
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("parser: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	b := lx.src[lx.pos]
	lx.pos++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		b := lx.peekByte()
		if b == '%' {
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
			continue
		}
		if b == ' ' || b == '\t' || b == '\r' || b == '\n' {
			lx.advance()
			continue
		}
		break
	}
}

func isIdentStart(b byte) bool {
	return b == '_' || unicode.IsLetter(rune(b))
}

func isIdentPart(b byte) bool {
	return b == '_' || unicode.IsLetter(rune(b)) || unicode.IsDigit(rune(b))
}

// next scans the next token.
func (lx *lexer) next() (token, error) {
	lx.skipSpace()
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	b := lx.peekByte()
	switch {
	case b >= '0' && b <= '9':
		start := lx.pos
		for lx.pos < len(lx.src) && lx.peekByte() >= '0' && lx.peekByte() <= '9' {
			lx.advance()
		}
		return token{kind: tokInt, text: lx.src[start:lx.pos], line: line, col: col}, nil
	case b == '"':
		lx.advance()
		var sb strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errorf(line, col, "unterminated string")
			}
			c := lx.advance()
			if c == '"' {
				return token{kind: tokStr, text: sb.String(), line: line, col: col}, nil
			}
			if c == '\\' {
				if lx.pos >= len(lx.src) {
					return token{}, lx.errorf(line, col, "unterminated escape")
				}
				e := lx.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '"':
					sb.WriteByte(e)
				default:
					return token{}, lx.errorf(lx.line, lx.col, "bad escape \\%c", e)
				}
				continue
			}
			sb.WriteByte(c)
		}
	case isIdentStart(b):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if text == "mod" {
			return token{kind: tokOp, text: text, line: line, col: col}, nil
		}
		first := rune(text[0])
		if first == '_' || unicode.IsUpper(first) {
			return token{kind: tokVar, text: text, line: line, col: col}, nil
		}
		return token{kind: tokAtom, text: text, line: line, col: col}, nil
	}
	// Punctuation and operators.
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch two {
	case "<-", "=<", ">=", "\\=", ":-":
		lx.advance()
		lx.advance()
		if two == ":-" { // accept Prolog-style arrow as a synonym
			two = "<-"
		}
		return token{kind: tokOp, text: two, line: line, col: col}, nil
	}
	lx.advance()
	switch b {
	case '(', ')', '[', ']', ',', '|', '.', '?':
		return token{kind: tokPunct, text: string(b), line: line, col: col}, nil
	case '=', '<', '>', '+', '-', '*', '/', '^':
		return token{kind: tokOp, text: string(b), line: line, col: col}, nil
	case '~':
		return token{kind: tokOp, text: "~", line: line, col: col}, nil
	}
	return token{}, lx.errorf(line, col, "unexpected character %q", b)
}
