package parser

import (
	"strings"
	"testing"

	"ldl/internal/lang"
	"ldl/internal/term"
)

func TestParseFigure21StyleRuleBase(t *testing.T) {
	src := `
% Figure 2-1 style rule base
p1(X, Y) <- b1(X, Z), p2(Z, Y).
p2(X, Y) <- b2(X, W), p2(W, Y).  % recursive R21
p2(X, Y) <- b3(X, Y).
b1(a, b).
b2(b, c).
b3(c, d).
p1(a, Y)?
`
	res, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clauses) != 6 {
		t.Fatalf("clauses = %d", len(res.Clauses))
	}
	if len(res.Queries) != 1 {
		t.Fatalf("queries = %d", len(res.Queries))
	}
	r := res.Clauses[1]
	if r.Head.Tag() != "p2/2" || len(r.Body) != 2 || r.Body[1].Pred != "p2" {
		t.Errorf("recursive rule parsed wrong: %s", r)
	}
	q := res.Queries[0]
	if q.Goal.Pred != "p1" || !term.Equal(q.Goal.Args[0], term.Atom("a")) {
		t.Errorf("query = %s", q)
	}
	if q.Adornment().Pattern(2) != "bf" {
		t.Errorf("query adornment = %q", q.Adornment().Pattern(2))
	}
}

func TestParseSameGeneration(t *testing.T) {
	src := `sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).`
	res, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := "sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y)."
	if got := res.Clauses[0].String(); got != want {
		t.Errorf("round trip: %q, want %q", got, want)
	}
}

func TestParseBuiltinsAndArith(t *testing.T) {
	src := `p(X, Y, Z) <- X = 3, Z = X + Y.
q(X, Y) <- p(X, Y, Z), Y = 2 ^ X.
r(X) <- s(X), X >= 10, X \= 13.
t(X) <- u(X, Y), Y =< X - 1.`
	res, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Clauses[0]
	if p.Body[0].Pred != lang.OpEq || !term.Equal(p.Body[0].Args[1], term.Int(3)) {
		t.Errorf("X = 3 parsed as %s", p.Body[0])
	}
	z := p.Body[1]
	add, ok := z.Args[1].(term.Comp)
	if !ok || add.Functor != "+" {
		t.Fatalf("Z = X + Y parsed as %s", z)
	}
	pow := res.Clauses[1].Body[1].Args[1].(term.Comp)
	if pow.Functor != "^" {
		t.Errorf("2^X parsed as %v", pow)
	}
	r := res.Clauses[2]
	if r.Body[1].Pred != lang.OpGe || r.Body[2].Pred != lang.OpNe {
		t.Errorf("comparisons parsed as %s", r)
	}
}

func TestParsePrecedence(t *testing.T) {
	tt, err := ParseTerm("1 + 2 * 3 ^ 2 - 4 / 2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := lang.EvalArith(tt)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1+2*9-2 {
		t.Errorf("precedence: got %d, want %d", got, 1+2*9-2)
	}
	// right-assoc power: 2^3^2 = 2^9 = 512
	tt2, _ := ParseTerm("2 ^ 3 ^ 2")
	if got, _ := lang.EvalArith(tt2); got != 512 {
		t.Errorf("2^3^2 = %d, want 512", got)
	}
	// parens override
	tt3, _ := ParseTerm("(1 + 2) * 3")
	if got, _ := lang.EvalArith(tt3); got != 9 {
		t.Errorf("(1+2)*3 = %d", got)
	}
	// unary minus
	tt4, _ := ParseTerm("-3 + 1")
	if got, _ := lang.EvalArith(tt4); got != -2 {
		t.Errorf("-3+1 = %d", got)
	}
	tt5, _ := ParseTerm("- (1 + 2)")
	if got, _ := lang.EvalArith(tt5); got != -3 {
		t.Errorf("-(1+2) = %d", got)
	}
}

func TestParseListsAndComplexTerms(t *testing.T) {
	tt, err := ParseTerm("[1, 2, 3]")
	if err != nil {
		t.Fatal(err)
	}
	elems, ok := term.ListSlice(tt)
	if !ok || len(elems) != 3 {
		t.Fatalf("list parse: %v %v", elems, ok)
	}
	tt2, err := ParseTerm("[H | T]")
	if err != nil {
		t.Fatal(err)
	}
	c := tt2.(term.Comp)
	if c.Functor != "." || c.Args[0].(term.Var).Name != "H" {
		t.Errorf("[H|T] = %v", tt2)
	}
	tt3, err := ParseTerm("part(wheel, [spoke, rim], 10)")
	if err != nil {
		t.Fatal(err)
	}
	if tt3.(term.Comp).Functor != "part" || len(tt3.(term.Comp).Args) != 3 {
		t.Errorf("compound = %v", tt3)
	}
	if tt4, err := ParseTerm("[]"); err != nil || !term.Equal(tt4, term.EmptyList) {
		t.Errorf("[] = %v, %v", tt4, err)
	}
	src := `assembly(bike, [part(wheel, 2), part(frame, 1)]).`
	res, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clauses[0].IsFact() {
		t.Error("assembly not a fact")
	}
}

func TestParseStringsAndNegation(t *testing.T) {
	src := `lbl(1, "hello\nworld").
safe(X) <- node(X), not bad(X).
also(X) <- node(X), ~ bad(X).`
	res, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !term.Equal(res.Clauses[0].Head.Args[1], term.Str("hello\nworld")) {
		t.Errorf("string = %v", res.Clauses[0].Head.Args[1])
	}
	if !res.Clauses[1].Body[1].Neg || !res.Clauses[2].Body[1].Neg {
		t.Error("negation not parsed")
	}
}

func TestParseCompoundComparisons(t *testing.T) {
	// compound term on the left of a comparison
	src := `p(X, Y) <- f(X) = Y.
q <- a = a.`
	res, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Clauses[0].Body[0]
	if l.Pred != lang.OpEq || l.Args[0].(term.Comp).Functor != "f" {
		t.Errorf("f(X) = Y parsed as %s", l)
	}
	l2 := res.Clauses[1].Body[0]
	if l2.Pred != lang.OpEq || !term.Equal(l2.Args[0], term.Atom("a")) {
		t.Errorf("a = a parsed as %s", l2)
	}
}

func TestParsePrologArrowSynonym(t *testing.T) {
	res, err := Parse(`p(X) :- q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clauses) != 1 || len(res.Clauses[0].Body) != 1 {
		t.Errorf("clauses = %v", res.Clauses)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`p(X Y).`,           // missing comma
		`p(X,).`,            // trailing comma -> bad term
		`p(X)`,              // missing period
		`p(X) <- .`,         // empty body literal
		`p(X) <- q(X,.`,     // unterminated args
		`"unterminated`,     // bad string
		`p(X) <- X & Y.`,    // bad char
		`[1, 2.`,            // list at clause level is not a literal
		`p([1, 2).`,         // unterminated list
		`not q(X) <- r(X).`, // negated head
		`p(X) <- q(X) r(X).`,
		`lbl("bad\q").`,            // bad escape
		`p(99999999999999999999).`, // integer overflow
		`X = .`,
		`p(X) <- [1] .`, // list where literal expected -> comparison op missing
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted bad source %q", src)
		}
	}
}

func TestParseProgram(t *testing.T) {
	prog, qs, err := ParseProgram(`e(1,2). tc(X,Y) <- e(X,Y). tc(X,Y) <- e(X,Z), tc(Z,Y). tc(1,Y)?`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 || len(prog.Facts) != 1 || len(qs) != 1 {
		t.Errorf("prog = %d rules %d facts %d queries", len(prog.Rules), len(prog.Facts), len(qs))
	}
	if _, _, err := ParseProgram(`p(X).`); err == nil {
		t.Error("non-ground fact accepted by ParseProgram")
	}
	if _, _, err := ParseProgram(`p(`); err == nil {
		t.Error("truncated input accepted by ParseProgram")
	}
}

func TestParseLiteral(t *testing.T) {
	l, err := ParseLiteral("sg(john, Y)")
	if err != nil || l.Pred != "sg" {
		t.Fatalf("ParseLiteral: %v %v", l, err)
	}
	if _, err := ParseLiteral("sg(john, Y) extra"); err == nil {
		t.Error("trailing tokens accepted")
	}
	if _, err := ParseLiteral("X < Y"); err != nil {
		t.Errorf("comparison literal: %v", err)
	}
	if _, err := ParseTerm("f(a) junk"); err == nil {
		t.Error("ParseTerm trailing tokens accepted")
	}
}

func TestParserErrorsMentionPosition(t *testing.T) {
	_, err := Parse("p(a).\nq(b,\n&).")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "3:1") {
		t.Errorf("error lacks position: %v", err)
	}
}
