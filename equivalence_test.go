package ldl

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorpusCoversExamples pins the golden corpus to the example
// programs: every directory under examples/ must have a corpus file of
// the same name (with divergent predicates documented out), so adding
// an example forces extending the equivalence suite.
func TestCorpusCoversExamples(t *testing.T) {
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		f := filepath.Join("testdata", "corpus", e.Name()+".ldl")
		if _, err := os.Stat(f); err != nil {
			t.Errorf("example %q has no corpus file %s", e.Name(), f)
		}
	}
}

// TestGoldenEquivalence is the kernel acceptance suite: every corpus
// program (the examples plus the negation/builtin-deferral/complex-
// term corpora) runs its embedded queries through {generic, tuple,
// batched} × {sequential, parallel} engines — tuple is the compiled
// path pinned to batch size 1, batched is the default vectorized
// executor — and all six answer sets must be byte-identical.
// EvaluateUnoptimized sorts answers canonically, so equality here
// really is byte equality.
func TestGoldenEquivalence(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.ldl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files found")
	}
	configs := []struct {
		name string
		opts []Option
	}{
		{"generic/seq", []Option{WithCompiledKernels(false)}},
		{"tuple/seq", []Option{WithBatchSize(1)}},
		{"batched/seq", nil},
		{"generic/par", []Option{WithCompiledKernels(false), WithParallel(4)}},
		{"tuple/par", []Option{WithBatchSize(1), WithParallel(4)}},
		{"batched/par", []Option{WithParallel(4)}},
	}
	render := func(rows [][]string) string {
		var b strings.Builder
		for _, r := range rows {
			b.WriteString(strings.Join(r, ","))
			b.WriteByte('\n')
		}
		return b.String()
	}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".ldl")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := Load(string(src))
			if err != nil {
				t.Fatal(err)
			}
			queries := sys.Queries()
			if len(queries) == 0 {
				t.Fatalf("%s has no embedded queries", f)
			}
			for _, goal := range queries {
				var ref string
				for i, cfg := range configs {
					rows, _, err := sys.EvaluateUnoptimized(goal, cfg.opts...)
					if err != nil {
						t.Fatalf("%s / %s: %v", goal, cfg.name, err)
					}
					got := render(rows)
					if i == 0 {
						ref = got
						if strings.TrimSpace(ref) == "" {
							// An all-empty answer set would make the
							// equivalence vacuous for this goal; the
							// corpus includes one intentionally empty
							// query (structural fact matching), so only
							// note it.
							t.Logf("%s: empty answer set", goal)
						}
						continue
					}
					if got != ref {
						t.Errorf("%s / %s: answers diverge from generic/seq\n got:\n%s\nwant:\n%s",
							goal, cfg.name, got, ref)
					}
				}
			}
		})
	}
}

// TestCorpusCounterParity is the vectorized executor's work-accounting
// acceptance: for every corpus query, generic, tuple-at-a-time and
// batched execution must report identical logical work counters
// (tuples, iterations, unifications, lookups) — the batch size is
// invisible in everything except Blocks and wall clock. It also pins
// the structured-term programs to the kernel path: their rules must
// all compile (KernelFallbacks 0), proving complex-term construction
// and decomposition no longer fall back to the generic interpreter.
func TestCorpusCounterParity(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.ldl"))
	if err != nil {
		t.Fatal(err)
	}
	noFallback := map[string]bool{"complexterms": true, "listapp": true, "treefold": true}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".ldl")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := Load(string(src))
			if err != nil {
				t.Fatal(err)
			}
			for _, goal := range sys.Queries() {
				_, generic, err := sys.EvaluateUnoptimized(goal, WithCompiledKernels(false))
				if err != nil {
					t.Fatalf("%s: %v", goal, err)
				}
				_, tuple, err := sys.EvaluateUnoptimized(goal, WithBatchSize(1))
				if err != nil {
					t.Fatalf("%s: %v", goal, err)
				}
				_, batched, err := sys.EvaluateUnoptimized(goal)
				if err != nil {
					t.Fatalf("%s: %v", goal, err)
				}
				if noFallback[name] {
					if batched.KernelFallbacks != 0 {
						t.Errorf("%s: KernelFallbacks = %d, want 0 (all rules must compile)", goal, batched.KernelFallbacks)
					}
					if batched.Blocks == 0 {
						t.Errorf("%s: Blocks = 0, vectorized path never engaged", goal)
					}
				}
				// Zero the counters that legitimately differ across
				// executors before the exact-match compare.
				for _, es := range []*ExecStats{&generic, &tuple, &batched} {
					es.KernelCompiles, es.KernelFallbacks, es.Blocks = 0, 0, 0
				}
				if tuple != generic {
					t.Errorf("%s: tuple counters diverge: %+v vs generic %+v", goal, tuple, generic)
				}
				if batched != generic {
					t.Errorf("%s: batched counters diverge: %+v vs generic %+v", goal, batched, generic)
				}
			}
		})
	}
}

// TestKernelWorkReduction documents why the kernels exist: on the
// transitive-closure workload the compiled path must report the same
// logical work (the counters are a cost proxy the experiments rely
// on) while the wall-clock/allocation win shows up in
// BenchmarkFixpointKernels.
func TestKernelWorkReduction(t *testing.T) {
	var b strings.Builder
	for i := 1; i <= 30; i++ {
		fmt.Fprintf(&b, "e(%d, %d).\n", i, i+1)
	}
	b.WriteString("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n")
	sys, err := Load(b.String())
	if err != nil {
		t.Fatal(err)
	}
	_, esCompiled, err := sys.EvaluateUnoptimized("tc(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	_, esGeneric, err := sys.EvaluateUnoptimized("tc(X, Y)", WithCompiledKernels(false))
	if err != nil {
		t.Fatal(err)
	}
	// KernelCompiles and Blocks legitimately differ between the two
	// paths (they count the compilation work and the vectorized frame
	// dispatches themselves, not logical query work).
	esCompiled.KernelCompiles, esGeneric.KernelCompiles = 0, 0
	esCompiled.Blocks, esGeneric.Blocks = 0, 0
	if esCompiled.KernelFallbacks != 0 {
		t.Errorf("KernelFallbacks = %d, want 0 (every tc rule compiles)", esCompiled.KernelFallbacks)
	}
	if esCompiled != esGeneric {
		t.Errorf("work counters diverge: compiled %+v vs generic %+v", esCompiled, esGeneric)
	}
	if esCompiled.TuplesDerived != 30*31/2 {
		t.Errorf("TuplesDerived = %d, want %d", esCompiled.TuplesDerived, 30*31/2)
	}
}
