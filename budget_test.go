package ldl

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// cycleTC builds transitive closure over an n-node cycle. The safety
// analysis accepts every query form (pure Datalog), yet tc(X, Y) holds
// n*n tuples — the canonical safe-but-expensive workload the resource
// governor exists for.
func cycleTC(n int) string {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&b, "e(n%d, n%d). ", i, i%n+1)
	}
	b.WriteString("\ntc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n")
	return b.String()
}

func loadCycle(t *testing.T, n int) *System {
	t.Helper()
	sys, err := Load(cycleTC(n))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// checkResourceErr asserts err matches the sentinel and carries
// populated counters.
func checkResourceErr(t *testing.T, err, want error) ResourceCounters {
	t.Helper()
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *ResourceError", err)
	}
	if re.Counters.Elapsed <= 0 {
		t.Errorf("counters not populated: %+v", re.Counters)
	}
	return re.Counters
}

func TestTupleBudgetBottomUp(t *testing.T) {
	sys := loadCycle(t, 150) // 22,500 tc tuples, budget 10,000
	plan, err := sys.Optimize("tc(X, Y)", WithStrategy(StrategyKBZ), WithMaxTuples(10_000))
	if err != nil {
		t.Fatal(err)
	}
	_, err = plan.Execute()
	c := checkResourceErr(t, err, ErrTupleBudget)
	if c.TuplesDerived < 10_000 {
		t.Errorf("TuplesDerived = %d, want >= 10000", c.TuplesDerived)
	}
}

func TestTupleBudgetTopDown(t *testing.T) {
	sys := loadCycle(t, 150)
	_, _, err := sys.EvaluateTopDown("tc(X, Y)", WithMaxTuples(10_000))
	c := checkResourceErr(t, err, ErrTupleBudget)
	if c.TuplesDerived < 10_000 {
		t.Errorf("TuplesDerived = %d, want >= 10000", c.TuplesDerived)
	}
}

func TestTimeoutBottomUp(t *testing.T) {
	// Big enough that an ungoverned run takes far longer than the
	// budget: 600² = 360,000 tuples.
	sys := loadCycle(t, 600)
	const budget = 50 * time.Millisecond
	plan, err := sys.Optimize("tc(X, Y)", WithStrategy(StrategyKBZ), WithTimeout(budget))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = plan.Execute()
	elapsed := time.Since(start)
	checkResourceErr(t, err, ErrTimeout)
	if elapsed > 2*budget {
		t.Errorf("returned after %v, want <= %v", elapsed, 2*budget)
	}
}

func TestTimeoutTopDown(t *testing.T) {
	sys := loadCycle(t, 600)
	const budget = 50 * time.Millisecond
	start := time.Now()
	_, _, err := sys.EvaluateTopDown("tc(X, Y)", WithTimeout(budget))
	elapsed := time.Since(start)
	checkResourceErr(t, err, ErrTimeout)
	if elapsed > 2*budget {
		t.Errorf("returned after %v, want <= %v", elapsed, 2*budget)
	}
}

func TestTimeoutUnoptimized(t *testing.T) {
	sys := loadCycle(t, 600)
	const budget = 50 * time.Millisecond
	start := time.Now()
	_, _, err := sys.EvaluateUnoptimized("tc(X, Y)", WithTimeout(budget))
	elapsed := time.Since(start)
	checkResourceErr(t, err, ErrTimeout)
	if elapsed > 2*budget {
		t.Errorf("returned after %v, want <= %v", elapsed, 2*budget)
	}
}

func TestContextCancellation(t *testing.T) {
	sys := loadCycle(t, 600)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the run must stop almost immediately
	plan, err := sys.Optimize("tc(X, Y)", WithStrategy(StrategyKBZ))
	if err != nil {
		t.Fatal(err)
	}
	plan.opts.ctx = ctx
	_, err = plan.Execute()
	checkResourceErr(t, err, ErrCanceled)
}

func TestContextDeadlineIsTimeout(t *testing.T) {
	sys := loadCycle(t, 600)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, err := sys.EvaluateTopDown("tc(X, Y)", WithContext(ctx))
	checkResourceErr(t, err, ErrTimeout)
}

// chainJoin is a query whose single rule joins k base relations — the
// factorial ordering space that makes exhaustive search blow a small
// state budget.
func chainJoin(k int) string {
	var b strings.Builder
	for i := 1; i <= k; i++ {
		for v := 1; v <= k+3; v++ {
			fmt.Fprintf(&b, "r%d(v%d, v%d). ", i, v, v+1)
		}
	}
	b.WriteString("\nchain(X0")
	for i := 1; i <= k; i++ {
		fmt.Fprintf(&b, ", X%d", i)
	}
	b.WriteString(") <- ")
	for i := 1; i <= k; i++ {
		if i > 1 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "r%d(X%d, X%d)", i, i-1, i)
	}
	b.WriteString(".\n")
	return b.String()
}

func TestOptimizerBudgetFallsBackToKBZ(t *testing.T) {
	sys, err := Load(chainJoin(7))
	if err != nil {
		t.Fatal(err)
	}
	// 7! = 5040 orderings; 20 states cannot cover them, so exhaustive
	// must downgrade to KBZ rather than fail.
	plan, err := sys.Optimize("chain(X0, X1, X2, X3, X4, X5, X6, X7)",
		WithStrategy(StrategyExhaustive), WithOptimizerBudget(20))
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not fail: %v", err)
	}
	if !plan.Safe() {
		t.Fatalf("plan unexpectedly unsafe: %s", plan.Reason())
	}
	explain := plan.Explain()
	if !strings.Contains(explain, "note:") || !strings.Contains(explain, "kbz") {
		t.Errorf("Explain does not mention the downgrade:\n%s", explain)
	}
	// The degraded plan still executes, and agrees with the baseline.
	rows, err := plan.Execute()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := sys.EvaluateUnoptimized("chain(X0, X1, X2, X3, X4, X5, X6, X7)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(rows) != len(want) {
		t.Errorf("degraded plan: %d rows, unoptimized: %d", len(rows), len(want))
	}
}

func TestNoBudgetUnchanged(t *testing.T) {
	// Without budget options no governor exists and results match the
	// governed-but-generous run.
	sys := loadCycle(t, 20)
	plain, err := sys.Query("tc(n1, Y)")
	if err != nil {
		t.Fatal(err)
	}
	governed, err := sys.Query("tc(n1, Y)",
		WithTimeout(time.Minute), WithMaxTuples(1_000_000), WithMaxIterations(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 20 || len(governed) != 20 {
		t.Errorf("answers: plain %d, governed %d, want 20", len(plain), len(governed))
	}
}
