package ldl

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
)

const sgSrc = `
par(a1, b1). par(a2, b1). par(b1, c1). par(b2, c1). par(b3, c2).
par(d1, b2). par(d2, b3). par(e1, c2).
sg(X, X) <- par(X, Z).
sg(X, Y) <- par(X, X1), sg(X1, Y1), par(Y, Y1).
`

func sortedRows(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, ",")
	}
	sort.Strings(out)
	return out
}

func TestQueryFormKeys(t *testing.T) {
	cases := []struct{ goal, key string }{
		{"sg(john, Y)", "sg/2(c0,v0)"},
		{"sg(mary, Z)", "sg/2(c0,v0)"},
		{"sg(X, Y)", "sg/2(v0,v1)"},
		{"sg(X, X)", "sg/2(v0,v0)"},
		{"sg(X, 3)", "sg/2(v0,c0)"},
		{`p("s", 7)`, "p/2(c0,c1)"},
	}
	for _, c := range cases {
		key, err := QueryForm(c.goal)
		if err != nil {
			t.Fatalf("QueryForm(%s): %v", c.goal, err)
		}
		if key != c.key {
			t.Errorf("QueryForm(%s) = %s, want %s", c.goal, key, c.key)
		}
	}
	if _, err := QueryForm("p(f(X), Y)"); !errors.Is(err, ErrNotPreparable) {
		t.Errorf("compound arg: err = %v, want ErrNotPreparable", err)
	}
	if key, err := QueryForm("p(f(a), Y)"); !errors.Is(err, ErrNotPreparable) {
		t.Errorf("ground compound arg: key=%q err = %v, want ErrNotPreparable", key, err)
	}
}

// TestPreparedMatchesOptimize is the parameterization soundness check:
// for every query form and every binding, the prepared plan's answers
// equal the one-shot Optimize+Execute answers, and repeated executions
// report zero kernel compilations.
func TestPreparedMatchesOptimize(t *testing.T) {
	sys, err := Load(sgSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.Prepare("sg(a1, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Safe() {
		t.Fatalf("unsafe: %s", p.Reason())
	}
	for _, c := range []string{"a1", "a2", "d1", "e1", "nosuch"} {
		goal := fmt.Sprintf("sg(%s, Y)", c)
		want, err := sys.Query(goal)
		if err != nil {
			t.Fatalf("Query(%s): %v", goal, err)
		}
		got, es, err := p.ExecuteStats(goal)
		if err != nil {
			t.Fatalf("prepared %s: %v", goal, err)
		}
		gw, gg := sortedRows(want), sortedRows(got)
		if strings.Join(gw, ";") != strings.Join(gg, ";") {
			t.Errorf("%s: prepared answers %v, one-shot %v", goal, gg, gw)
		}
		if es.KernelCompiles != 0 {
			t.Errorf("%s: KernelCompiles = %d, want 0 (precompiled)", goal, es.KernelCompiles)
		}
	}
	// Shape mismatches are rejected, not silently misanswered.
	if _, _, err := p.ExecuteStats("sg(X, Y)"); err == nil {
		t.Error("free-form goal accepted by bound-form plan")
	}
	if _, _, err := p.ExecuteStats("sg(X, a1)"); err == nil {
		t.Error("mirrored form accepted")
	}
}

// TestPreparedAllFreeAndRepeatedVars covers the forms without
// constants (nothing to parameterize — the plan is still precompiled)
// and with repeated variables.
func TestPreparedAllFreeAndRepeatedVars(t *testing.T) {
	sys, err := Load(sgSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, goal := range []string{"sg(X, Y)", "sg(X, X)"} {
		p, err := sys.Prepare(goal)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sys.Query(goal)
		if err != nil {
			t.Fatal(err)
		}
		got, es, err := p.ExecuteStats(goal)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(sortedRows(want), ";") != strings.Join(sortedRows(got), ";") {
			t.Errorf("%s: prepared %v, one-shot %v", goal, sortedRows(got), sortedRows(want))
		}
		if es.KernelCompiles != 0 {
			t.Errorf("%s: KernelCompiles = %d", goal, es.KernelCompiles)
		}
	}
}

// TestPreparedSeesNewEpochs: a prepared plan binds against the current
// snapshot, so facts inserted after Prepare appear in its answers.
func TestPreparedSeesNewEpochs(t *testing.T) {
	sys, err := Load(sgSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.Prepare("sg(a1, Y)")
	if err != nil {
		t.Fatal(err)
	}
	before, es1, err := p.ExecuteStats("sg(a1, Y)")
	if err != nil {
		t.Fatal(err)
	}
	added, epoch, err := sys.InsertFacts("par(a3, b1).")
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || epoch != 2 {
		t.Fatalf("InsertFacts = (%d, %d), want (1, 2)", added, epoch)
	}
	after, es2, err := p.ExecuteStats("sg(a1, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if es1.Epoch != 1 || es2.Epoch != 2 {
		t.Errorf("epochs = %d, %d, want 1, 2", es1.Epoch, es2.Epoch)
	}
	// a3 is a new sibling-generation member: sg(a1, a3) must now hold.
	has := func(rows [][]string, v string) bool {
		for _, r := range rows {
			if r[1] == v {
				return true
			}
		}
		return false
	}
	if has(before, "a3") {
		t.Error("a3 visible before insert")
	}
	if !has(after, "a3") {
		t.Error("a3 not visible after insert")
	}
	// One-shot path agrees.
	want, err := sys.Query("sg(a1, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(sortedRows(want), ";") != strings.Join(sortedRows(after), ";") {
		t.Errorf("prepared %v, one-shot %v", sortedRows(after), sortedRows(want))
	}
}

func TestInsertFactsRejectsRulesAndDerived(t *testing.T) {
	sys, err := Load(sgSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.InsertFacts("q(X) <- par(X, Y)."); err == nil {
		t.Error("rule accepted")
	}
	if _, _, err := sys.InsertFacts("sg(x, y)."); err == nil {
		t.Error("derived-predicate fact accepted")
	}
	if _, _, err := sys.InsertFacts("par(z1, z2)?"); err == nil {
		t.Error("query form accepted")
	}
	if sys.Epoch() != 1 {
		t.Errorf("failed inserts advanced the epoch to %d", sys.Epoch())
	}
}

// TestObservedStatsFeedback: with feedback enabled, an all-free
// execution records the derived predicate's true extension statistics,
// which subsequent Optimize calls consume in place of the analytic
// estimate.
func TestObservedStatsFeedback(t *testing.T) {
	sys, err := Load(sgSrc)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableStatsFeedback(true)
	if _, err := sys.Query("sg(X, Y)"); err != nil {
		t.Fatal(err)
	}
	sys.obsMu.Lock()
	st, ok := sys.observed["sg/2"]
	sys.obsMu.Unlock()
	if !ok {
		t.Fatal("no observed stats recorded for sg/2")
	}
	want, err := sys.Query("sg(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if int(st.Card) != len(want) {
		t.Errorf("observed Card = %v, true extension %d", st.Card, len(want))
	}
	// The overlay feeds Optimize: a plan for the bound form still works.
	rows, err := sys.Query("sg(a1, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Error("no answers under observed stats")
	}
}

// TestObservedBoundFormFeedback: bound-form executions record observed
// cardinalities under the adorned tag (sg.bf/2 here), aggregated as the
// max over the constants seen — exactly the key statsOf consults when
// costing the rewritten program of a later query of the same form.
func TestObservedBoundFormFeedback(t *testing.T) {
	sys, err := Load(sgSrc)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableStatsFeedback(true)
	small, err := sys.Query("sg(d1, Y)")
	if err != nil {
		t.Fatal(err)
	}
	sys.obsMu.Lock()
	first, ok := sys.observed["sg.bf/2"]
	sys.obsMu.Unlock()
	if !ok {
		t.Fatal("no observed stats recorded for the adorned form sg.bf/2")
	}
	if int(first.Card) < len(small) {
		t.Errorf("observed Card %v below the %d answers served", first.Card, len(small))
	}
	// A broader constant may observe a larger restricted extension; a
	// narrower one must never shrink the recorded max.
	if _, err := sys.Query("sg(a1, Y)"); err != nil {
		t.Fatal(err)
	}
	sys.obsMu.Lock()
	agg := sys.observed["sg.bf/2"]
	sys.obsMu.Unlock()
	if agg.Card < first.Card {
		t.Errorf("aggregate Card %v shrank below earlier observation %v (want max over constants)", agg.Card, first.Card)
	}
	// The overlay must not break later bound-form plans.
	rows, err := sys.Query("sg(a1, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Error("no answers under observed adorned stats")
	}
}
