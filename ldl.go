// Package ldl is a from-scratch Go implementation of the LDL query
// optimizer described in R. Krishnamurthy & C. Zaniolo, "Optimization
// in a Logic Based Language for Knowledge and Data Intensive
// Applications" (EDBT 1988), together with the complete substrate that
// paper assumes: a Horn-clause language with complex terms and
// evaluable predicates, a relational/fixpoint execution engine,
// recursive-query rewrites (magic sets, counting), database statistics
// and a cost model.
//
// The entry point is a System: load a program (rules + facts), then ask
// it to Optimize query forms. Optimization is query-form-specific —
// sg(john, Y)? compiles to a different execution than sg(X, Y)? — and
// integrates safety: queries with no terminating execution are
// rejected with a diagnosis rather than looping forever.
//
//	sys, _ := ldl.Load(src)
//	plan, _ := sys.Optimize("sg(john, Y)", ldl.WithStrategy(ldl.StrategyExhaustive))
//	fmt.Println(plan.Explain())
//	rows, _ := plan.Execute()
package ldl

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"ldl/internal/core"
	"ldl/internal/cost"
	"ldl/internal/eval"
	"ldl/internal/lang"
	"ldl/internal/parser"
	"ldl/internal/resource"
	"ldl/internal/stats"
	"ldl/internal/store"
)

// The resource-governor error taxonomy. Optimize, Execute and the
// evaluators return errors matchable with errors.Is against these
// sentinels when a configured budget is exceeded; every such error is
// a *ResourceError carrying the work counters at the violation, read
// with errors.As. Safety (rejecting queries with no terminating
// execution) is a static guarantee; these budgets are the dynamic
// complement — a safe query can still be too expensive to run.
var (
	// ErrTimeout: the WithTimeout bound or the WithContext deadline
	// passed before the call finished.
	ErrTimeout = resource.ErrTimeout
	// ErrCanceled: the WithContext context was canceled.
	ErrCanceled = resource.ErrCanceled
	// ErrTupleBudget: evaluation derived more tuples than WithMaxTuples
	// allows.
	ErrTupleBudget = resource.ErrTupleBudget
	// ErrIterationBudget: the fixpoint ran more rounds than
	// WithMaxIterations allows.
	ErrIterationBudget = resource.ErrIterationBudget
	// ErrOptimizerBudget: the plan search exhausted WithOptimizerBudget.
	// Inside Optimize this triggers graceful degradation to the KBZ
	// strategy instead of failing, so it is rarely observed by callers;
	// it is exported so the taxonomy is complete.
	ErrOptimizerBudget = resource.ErrOptimizerBudget
	// ErrInternal wraps a recovered internal panic: the library
	// guarantees that no malformed program or optimizer bug can take
	// down a serving process through Load, Optimize or Execute.
	ErrInternal = errors.New("ldl: internal error")
)

// ResourceError is the concrete type of all budget errors; Counters
// reports tuples derived, fixpoint iterations, optimizer states
// explored and elapsed time at the moment the budget tripped.
type ResourceError = resource.ResourceError

// ResourceCounters is the counter block inside a ResourceError.
type ResourceCounters = resource.Counters

// guard converts a panic escaping an internal layer into ErrInternal.
// Deferred at every public API boundary so one bad program cannot
// crash the process hosting the library.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: panic: %v", ErrInternal, r)
	}
}

// Strategy names the optimizer's search strategy for conjunct ordering.
type Strategy string

// The three interchangeable strategies of the paper's §7.1, plus the
// Selinger dynamic-programming variant of exhaustive search.
const (
	StrategyExhaustive Strategy = "exhaustive"
	StrategyDP         Strategy = "dp"
	StrategyKBZ        Strategy = "kbz"
	StrategyAnneal     Strategy = "anneal"
)

func (s Strategy) impl(seed int64) (core.Strategy, error) {
	switch s {
	case StrategyExhaustive, "":
		return core.Exhaustive{}, nil
	case StrategyDP:
		return core.DP{}, nil
	case StrategyKBZ:
		return core.KBZ{}, nil
	case StrategyAnneal:
		return core.Anneal{Seed: seed}, nil
	}
	return nil, fmt.Errorf("ldl: unknown strategy %q", s)
}

// System is a loaded knowledge base: rule base, fact base and gathered
// statistics.
type System struct {
	prog    *lang.Program
	db      *store.Database
	cat     *stats.Catalog
	queries []lang.Query
}

// Load parses LDL source text (rules, facts and optional "goal?" query
// forms), loads the facts and gathers exact statistics.
func Load(src string) (_ *System, err error) {
	defer guard(&err)
	prog, queries, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	// Predicates mixing facts and rules are normalized so program
	// rewrites (magic, counting) keep their facts.
	prog, err = lang.Normalize(prog)
	if err != nil {
		return nil, err
	}
	db := store.NewDatabase()
	if err := db.LoadFacts(prog); err != nil {
		return nil, err
	}
	return &System{prog: prog, db: db, cat: stats.Gather(db), queries: queries}, nil
}

// Queries returns the query forms embedded in the source ("goal?").
func (s *System) Queries() []string {
	out := make([]string, len(s.queries))
	for i, q := range s.queries {
		out[i] = q.Goal.String()
	}
	return out
}

// Relations lists the base and loaded relations with cardinalities.
func (s *System) Relations() []string {
	var out []string
	for _, tag := range s.db.Tags() {
		out = append(out, fmt.Sprintf("%s (%d tuples)", tag, s.db.Relation(tag).Len()))
	}
	sort.Strings(out)
	return out
}

// SetStats overrides the statistics of one relation — the hook
// experiments use to explore synthetic "states of the database".
func (s *System) SetStats(tag string, card float64, distinct []float64) {
	s.cat.Set(tag, stats.RelStats{Card: card, Distinct: distinct})
}

// sizeHints turns the gathered statistics into relation pre-sizing
// hints for the evaluator: base predicates get their exact cardinality
// (derived relations seeded from base facts then skip every rehash
// growth step up to that size). Derived predicates are absent — their
// cardinality is a cost-model estimate, not a promise — and absent
// entries cost nothing.
func (s *System) sizeHints() map[string]int {
	hints := make(map[string]int)
	for _, tag := range s.cat.Tags() {
		if c := s.cat.Stats(tag).Card; c > 0 {
			hints[tag] = int(c)
		}
	}
	return hints
}

// Option configures one Optimize call.
type Option func(*options)

type options struct {
	strategy  Strategy
	seed      int64
	flatten   bool
	parallel  int
	noKernels bool

	// Resource governor configuration. Zero values mean "no limit";
	// with everything zero no governor is built and the hot paths pay
	// only a nil check.
	ctx           context.Context
	timeout       time.Duration
	maxTuples     int
	maxIterations int
	optStates     int
}

// governor builds the resource governor for one call. Each call gets a
// fresh deadline (now + timeout), so a Plan optimized under a timeout
// grants every Execute the full duration again.
func (o *options) governor() *resource.Governor {
	b := resource.Budget{
		MaxTuples:     o.maxTuples,
		MaxIterations: o.maxIterations,
		MaxStates:     o.optStates,
	}
	if o.timeout > 0 {
		b.Deadline = time.Now().Add(o.timeout)
	}
	return resource.New(o.ctx, b)
}

// WithStrategy selects the search strategy (default exhaustive).
func WithStrategy(st Strategy) Option { return func(o *options) { o.strategy = st } }

// WithSeed seeds the stochastic strategy.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithContext makes the call observe ctx: cancellation surfaces as
// ErrCanceled, a context deadline as ErrTimeout. The check is
// amortized (the clock is read every few hundred derivations), so
// cancellation takes effect within microseconds, not instantly.
func WithContext(ctx context.Context) Option { return func(o *options) { o.ctx = ctx } }

// WithTimeout bounds the wall-clock time of each governed call
// (Optimize, and each Execute separately); exceeding it returns
// ErrTimeout wrapping a *ResourceError.
func WithTimeout(d time.Duration) Option { return func(o *options) { o.timeout = d } }

// WithMaxTuples bounds how many tuples an execution may derive across
// all relations; exceeding it returns ErrTupleBudget. It bounds space
// as well as time: every derived tuple is materialized.
func WithMaxTuples(n int) Option { return func(o *options) { o.maxTuples = n } }

// WithMaxIterations bounds the number of fixpoint rounds; exceeding it
// returns ErrIterationBudget.
func WithMaxIterations(n int) Option { return func(o *options) { o.maxIterations = n } }

// WithOptimizerBudget bounds the plan-search effort of Optimize to n
// explored states (join orders costed, c-permutations priced). On
// exhaustion the optimizer degrades instead of failing: rule-ordering
// search falls back to the quadratic KBZ strategy and the recursive
//-clique search keeps the best candidate priced so far. Downgrades are
// recorded in Plan.Explain. KBZ itself is exempt (it is the floor of
// the ladder), so Optimize still returns a plan unless time runs out.
func WithOptimizerBudget(n int) Option { return func(o *options) { o.optStates = n } }

// WithParallel evaluates the bottom-up fixpoint on n workers:
// independent recursive cliques of the follows order run concurrently,
// and rule applications within one fixpoint round fan out across the
// pool. n <= 1 keeps the sequential reference engine (the default);
// n < 0 sizes the pool by GOMAXPROCS. Query answers are identical in
// every mode — plans, Explain output and answer order do not change,
// only evaluation wall-clock. Work counters (ExecStats) remain exact,
// but Iterations may differ from the sequential engine's because
// parallel rounds see derivations one barrier later.
func WithParallel(n int) Option { return func(o *options) { o.parallel = n } }

// WithCompiledKernels controls the compiled join-kernel execution path
// (on by default). When on, each rule whose body fits the positional
// register-frame representation is compiled once per recursive clique
// into a join program — constants, bound-variable probes and repeated-
// variable checks resolved per column at compile time — and executed
// without substitution maps or per-candidate allocation; rules needing
// real unification (non-ground compound arguments, constructed heads)
// automatically use the generic interpreter. Answers are identical
// either way; WithCompiledKernels(false) is the A/B escape hatch.
func WithCompiledKernels(on bool) Option { return func(o *options) { o.noKernels = !on } }

// WithFlattening enables the §8.3 rescue: when a query form has no
// safe execution, non-recursive single-rule predicates are unfolded
// into their callers (the FU transformation applied as rewriting) and
// the search retried — the extension the paper sketches for later
// optimizer versions.
func WithFlattening() Option { return func(o *options) { o.flatten = true } }

// Plan is an optimized (and compilable) execution for one query form.
type Plan struct {
	sys    *System
	goal   lang.Literal
	result *core.Result
	opts   options // budgets carry over from Optimize to each Execute
	// Optimizer diagnostics.
	MemoLookups int
	MemoHits    int
}

// Optimize compiles and optimizes one query form, e.g. "sg(john, Y)".
// It never fails on unsafe queries — it returns a Plan whose Safe()
// reports false with a Reason(); Execute then refuses to run.
func (s *System) Optimize(goal string, opts ...Option) (_ *Plan, err error) {
	defer guard(&err)
	var o options
	for _, f := range opts {
		f(&o)
	}
	strat, err := o.strategy.impl(o.seed)
	if err != nil {
		return nil, err
	}
	lit, err := parser.ParseLiteral(goal)
	if err != nil {
		return nil, err
	}
	opt, err := core.New(s.prog, s.cat, strat)
	if err != nil {
		return nil, err
	}
	opt.Gov = o.governor()
	var res *core.Result
	if o.flatten {
		res, err = opt.OptimizeFlattened(lang.Query{Goal: lit}, 8)
	} else {
		res, err = opt.Optimize(lang.Query{Goal: lit})
	}
	if err != nil {
		return nil, err
	}
	return &Plan{sys: s, goal: lit, result: res, opts: o, MemoLookups: opt.MemoLookups, MemoHits: opt.MemoHits}, nil
}

// Safe reports whether a safe (terminating) execution was found.
func (p *Plan) Safe() bool { return p.result.Safe }

// Reason explains why the query is unsafe (empty when Safe).
func (p *Plan) Reason() string { return p.result.Reason }

// Cost is the estimated cost of the chosen execution (+Inf if unsafe).
func (p *Plan) Cost() float64 { return float64(p.result.Cost) }

// Explain renders the chosen processing tree (Figure 4-1 style:
// squares materialize, triangles pipeline, CC marks recursive cliques).
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s?\n", p.goal)
	if !p.result.Safe {
		fmt.Fprintf(&b, "UNSAFE: %s\n", p.result.Reason)
		return b.String()
	}
	fmt.Fprintf(&b, "estimated cost: %.1f, cardinality: %.1f\n", float64(p.result.Cost), p.result.Card)
	for _, d := range p.result.Downgrades {
		fmt.Fprintf(&b, "note: %s\n", d)
	}
	b.WriteString(p.result.Plan.Render())
	return b.String()
}

// ExecStats reports how much work an execution did.
type ExecStats struct {
	TuplesDerived int
	Iterations    int
	Unifications  int64
	Lookups       int64
}

// Execute compiles the plan to a program, evaluates it and returns the
// answers as rows of rendered terms, in canonical order.
func (p *Plan) Execute() ([][]string, error) {
	rows, _, err := p.ExecuteStats()
	return rows, err
}

// ExecuteStats is Execute plus work counters.
func (p *Plan) ExecuteStats() (_ [][]string, es ExecStats, err error) {
	defer guard(&err)
	compiled, err := p.result.Compile()
	if err != nil {
		return nil, es, err
	}
	prog2, err := lang.NewProgram(compiled.Clauses)
	if err != nil {
		return nil, es, err
	}
	db2 := p.sys.db.Clone()
	if err := db2.LoadFacts(prog2); err != nil {
		return nil, es, err
	}
	methodFor := map[string]eval.Method{}
	for tag, meth := range compiled.FixMethods {
		if meth != cost.RecNaive {
			continue
		}
		base := tag[:strings.IndexByte(tag, '/')]
		for _, t2 := range prog2.PredTags() {
			name := t2[:strings.LastIndexByte(t2, '/')]
			if name == base || strings.HasPrefix(name, base+".") {
				methodFor[t2] = eval.Naive
			}
		}
	}
	// Budgets turn a diverging execution (which the safety analysis
	// should have prevented) into an error instead of a hang. The
	// governor layers the caller's (typically tighter) budget on top.
	e, err := eval.New(prog2, db2, eval.Options{
		Method: eval.SemiNaive, MethodFor: methodFor,
		MaxTuples: 5_000_000, MaxIterations: 200_000,
		Parallel: p.opts.parallel, SizeHints: p.sys.sizeHints(),
		DisableKernels: p.opts.noKernels,
		Gov:            p.opts.governor(),
	})
	if err != nil {
		return nil, es, err
	}
	if err := e.Run(); err != nil {
		return nil, es, err
	}
	ansPred := compiled.AnswerTag[:strings.LastIndexByte(compiled.AnswerTag, '/')]
	ts, err := e.Answers(lang.Query{Goal: lang.Literal{Pred: ansPred, Args: p.goal.Args}})
	if err != nil {
		return nil, es, err
	}
	es = ExecStats{
		TuplesDerived: e.Counters.TuplesDerived,
		Iterations:    e.Counters.Iterations,
		Unifications:  e.Counters.Unifications,
		Lookups:       e.Counters.Lookups,
	}
	rows := make([][]string, len(ts))
	for i, t := range ts {
		row := make([]string, len(t))
		for j, v := range t {
			row[j] = v.String()
		}
		rows[i] = row
	}
	return rows, es, nil
}

// Query is the one-shot convenience: optimize with defaults and run.
func (s *System) Query(goal string, opts ...Option) ([][]string, error) {
	p, err := s.Optimize(goal, opts...)
	if err != nil {
		return nil, err
	}
	if !p.Safe() {
		return nil, fmt.Errorf("ldl: query %s is unsafe: %s", goal, p.Reason())
	}
	return p.Execute()
}

// EvaluateTopDown answers the goal with the tabled top-down evaluator:
// goal-directed resolution with one answer table per call pattern — the
// literal realization of pipelined execution, and an independent oracle
// against the bottom-up engine. It can answer bound query forms (e.g. a
// list-consuming recursion with the list supplied) whose bottom-up
// fixpoint does not exist.
func (s *System) EvaluateTopDown(goal string, opts ...Option) (_ [][]string, es ExecStats, err error) {
	defer guard(&err)
	var o options
	for _, f := range opts {
		f(&o)
	}
	lit, err := parser.ParseLiteral(goal)
	if err != nil {
		return nil, es, err
	}
	td := eval.NewTopDown(s.prog, s.db, eval.Options{MaxTuples: 5_000_000, MaxIterations: 200_000, Gov: o.governor()})
	ts, err := td.Query(lang.Query{Goal: lit})
	if err != nil {
		return nil, es, err
	}
	es = ExecStats{
		TuplesDerived: td.Counters.TuplesDerived,
		Iterations:    td.Counters.Iterations,
		Unifications:  td.Counters.Unifications,
		Lookups:       td.Counters.Lookups,
	}
	rows := make([][]string, len(ts))
	for i, t := range ts {
		row := make([]string, len(t))
		for j, v := range t {
			row[j] = v.String()
		}
		rows[i] = row
	}
	return rows, es, nil
}

// EvaluateUnoptimized runs the query on the original program with plain
// semi-naive evaluation and no optimization — the baseline the paper's
// optimizer improves on, exposed for comparison and testing.
func (s *System) EvaluateUnoptimized(goal string, opts ...Option) (_ [][]string, es ExecStats, err error) {
	defer guard(&err)
	var o options
	for _, f := range opts {
		f(&o)
	}
	lit, err := parser.ParseLiteral(goal)
	if err != nil {
		return nil, es, err
	}
	e, err := eval.New(s.prog, s.db, eval.Options{
		Method: eval.SemiNaive, Parallel: o.parallel,
		SizeHints: s.sizeHints(), DisableKernels: o.noKernels,
		Gov: o.governor(),
	})
	if err != nil {
		return nil, es, err
	}
	ts, err := e.Answers(lang.Query{Goal: lit})
	if err != nil {
		return nil, es, err
	}
	es = ExecStats{
		TuplesDerived: e.Counters.TuplesDerived,
		Iterations:    e.Counters.Iterations,
		Unifications:  e.Counters.Unifications,
		Lookups:       e.Counters.Lookups,
	}
	rows := make([][]string, len(ts))
	for i, t := range ts {
		row := make([]string, len(t))
		for j, v := range t {
			row[j] = v.String()
		}
		rows[i] = row
	}
	return rows, es, nil
}
