// Package ldl is a from-scratch Go implementation of the LDL query
// optimizer described in R. Krishnamurthy & C. Zaniolo, "Optimization
// in a Logic Based Language for Knowledge and Data Intensive
// Applications" (EDBT 1988), together with the complete substrate that
// paper assumes: a Horn-clause language with complex terms and
// evaluable predicates, a relational/fixpoint execution engine,
// recursive-query rewrites (magic sets, counting), database statistics
// and a cost model.
//
// The entry point is a System: load a program (rules + facts), then ask
// it to Optimize query forms. Optimization is query-form-specific —
// sg(john, Y)? compiles to a different execution than sg(X, Y)? — and
// integrates safety: queries with no terminating execution are
// rejected with a diagnosis rather than looping forever.
//
//	sys, _ := ldl.Load(src)
//	plan, _ := sys.Optimize("sg(john, Y)", ldl.WithStrategy(ldl.StrategyExhaustive))
//	fmt.Println(plan.Explain())
//	rows, _ := plan.Execute()
package ldl

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ldl/internal/core"
	"ldl/internal/cost"
	"ldl/internal/depgraph"
	"ldl/internal/eval"
	"ldl/internal/lang"
	"ldl/internal/parser"
	"ldl/internal/resource"
	"ldl/internal/stats"
	"ldl/internal/store"
	"ldl/internal/wal"
)

// The resource-governor error taxonomy. Optimize, Execute and the
// evaluators return errors matchable with errors.Is against these
// sentinels when a configured budget is exceeded; every such error is
// a *ResourceError carrying the work counters at the violation, read
// with errors.As. Safety (rejecting queries with no terminating
// execution) is a static guarantee; these budgets are the dynamic
// complement — a safe query can still be too expensive to run.
var (
	// ErrTimeout: the WithTimeout bound or the WithContext deadline
	// passed before the call finished.
	ErrTimeout = resource.ErrTimeout
	// ErrCanceled: the WithContext context was canceled.
	ErrCanceled = resource.ErrCanceled
	// ErrTupleBudget: evaluation derived more tuples than WithMaxTuples
	// allows.
	ErrTupleBudget = resource.ErrTupleBudget
	// ErrIterationBudget: the fixpoint ran more rounds than
	// WithMaxIterations allows.
	ErrIterationBudget = resource.ErrIterationBudget
	// ErrOptimizerBudget: the plan search exhausted WithOptimizerBudget.
	// Inside Optimize this triggers graceful degradation to the KBZ
	// strategy instead of failing, so it is rarely observed by callers;
	// it is exported so the taxonomy is complete.
	ErrOptimizerBudget = resource.ErrOptimizerBudget
	// ErrInternal wraps a recovered internal panic: the library
	// guarantees that no malformed program or optimizer bug can take
	// down a serving process through Load, Optimize or Execute.
	ErrInternal = errors.New("ldl: internal error")
)

// ResourceError is the concrete type of all budget errors; Counters
// reports tuples derived, fixpoint iterations, optimizer states
// explored and elapsed time at the moment the budget tripped.
type ResourceError = resource.ResourceError

// ResourceCounters is the counter block inside a ResourceError.
type ResourceCounters = resource.Counters

// guard converts a panic escaping an internal layer into ErrInternal.
// Deferred at every public API boundary so one bad program cannot
// crash the process hosting the library.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: panic: %v", ErrInternal, r)
	}
}

// Strategy names the optimizer's search strategy for conjunct ordering.
type Strategy string

// The three interchangeable strategies of the paper's §7.1, plus the
// Selinger dynamic-programming variant of exhaustive search.
const (
	StrategyExhaustive Strategy = "exhaustive"
	StrategyDP         Strategy = "dp"
	StrategyKBZ        Strategy = "kbz"
	StrategyAnneal     Strategy = "anneal"
)

func (s Strategy) impl(seed int64) (core.Strategy, error) {
	switch s {
	case StrategyExhaustive, "":
		return core.Exhaustive{}, nil
	case StrategyDP:
		return core.DP{}, nil
	case StrategyKBZ:
		return core.KBZ{}, nil
	case StrategyAnneal:
		return core.Anneal{Seed: seed}, nil
	}
	return nil, fmt.Errorf("ldl: unknown strategy %q", s)
}

// System is a loaded knowledge base: rule base, fact base and gathered
// statistics. The fact base is versioned into epochs: every update
// (InsertFacts, SetStats) builds a new immutable epoch and publishes it
// atomically, so any number of concurrent readers (Execute, Prepared
// executions) run against a consistent snapshot while exactly one
// writer at a time advances the state. An epoch is never mutated after
// publication — executions fork it copy-on-write for their transient
// seed facts.
type System struct {
	prog    *lang.Program
	queries []lang.Query

	// writeMu serializes epoch construction; epoch is the atomically
	// published current snapshot. head is the newest *appended* epoch —
	// under group commit a writer chains its epoch onto head (and logs
	// it) inside writeMu, then waits for the cohort fsync and publishes
	// outside it, so the log never stalls behind an fsync and readers
	// never see a batch before it is durable. head == published except
	// in the window where commits are in flight; headLSN is the log
	// position covering head. Both are guarded by writeMu.
	writeMu sync.Mutex
	epoch   atomic.Pointer[epochState]
	head    *epochState
	headLSN int64

	// readOnly marks a replica: InsertFacts refuses with a
	// *ReadOnlyError pointing at leaderAddr until Promote. Guarded by
	// writeMu.
	readOnly   bool
	leaderAddr string

	// term is the leader-term high-water mark (guarded by writeMu):
	// every logged batch is stamped with it, Promote bumps it, and
	// ObserveTerm adopts higher terms seen on the wire — demoting a
	// stale leader to read-only when one appears. fenced counts fencing
	// events (stale streams refused, demotions latched) for STATS.
	term   uint64
	fenced atomic.Int64

	// observed holds derived-extension statistics recorded after
	// materializing executions (exact cardinality and live per-column
	// distinct counts of fully computed derived predicates). When
	// feedback is enabled they overlay the catalog at Optimize/Prepare
	// time, replacing the optimizer's static analytic estimates. Kept
	// outside the epoch so recording an observation does not advance the
	// epoch (which would invalidate prepared-plan caches keyed on it).
	obsMu    sync.Mutex
	observed map[string]stats.RelStats
	feedback atomic.Bool

	// Durability (nil / zero unless Load saw WithDurability — the
	// in-memory path pays only a nil check). wal is the write-ahead log
	// every InsertFacts batch hits before its epoch publishes; recovery
	// is what boot found in the data directory; ckptBytes triggers the
	// background checkpointer, ckptBusy dedupes triggers and ckptMu
	// serializes the checkpoints themselves.
	wal       *wal.Log
	walDir    string
	walFS     wal.FS
	recovery  *wal.RecoveryReport
	ckptBytes int64
	ckptBusy  atomic.Bool
	ckptMu    sync.Mutex

	// Storage tier (nil unless Load saw WithStorageDir): the segment
	// directory state behind segCheckpoint and StorageStats. seg.man is
	// guarded by ckptMu; segFlushes is the lifetime flush counter.
	seg        *segState
	segFlushes atomic.Int64

	// Materialized views (zero unless Load saw WithMaterialized):
	// maintenance configuration, the Load-time cached dependency graph
	// and compiled kernels every epoch's maintenance reuses, and the
	// lifetime telemetry behind IVMStats. The views themselves live on
	// the epoch (epochState.mat) so they publish atomically with the
	// facts.
	matCfg   matConfig
	matGraph *depgraph.Graph
	matKern  *eval.ProgramKernels
	ivm      ivmCounters
}

// epochState is one immutable published version of the fact base: the
// database, its statistics catalog, and the evaluator pre-sizing hints
// derived from the catalog.
type epochState struct {
	id    uint64
	db    *store.Database
	cat   *stats.Catalog
	hints map[string]int
	// mat holds this epoch's materialized derived relations and base
	// watermarks; nil when the System is not materialized or this
	// epoch's maintenance degraded. Immutable after publication, like
	// everything else here.
	mat *matState
}

// newEpoch assembles an epoch, deriving the size hints: base predicates
// get their exact cardinality so derived relations seeded from base
// facts skip every rehash growth step up to that size.
func newEpoch(id uint64, db *store.Database, cat *stats.Catalog) *epochState {
	hints := make(map[string]int)
	for _, tag := range cat.Tags() {
		if c := cat.Stats(tag).Card; c > 0 {
			hints[tag] = int(c)
		}
	}
	return &epochState{id: id, db: db, cat: cat, hints: hints}
}

// snapshot returns the current epoch. The returned state is immutable;
// callers may read it for as long as they like regardless of concurrent
// writers.
func (s *System) snapshot() *epochState { return s.epoch.Load() }

// headState returns the newest appended epoch — the one new writes must
// chain onto, which is ahead of the published snapshot while a group
// commit is in flight. Caller holds writeMu.
func (s *System) headState() *epochState {
	if s.head != nil {
		return s.head
	}
	return s.epoch.Load()
}

// publish makes next the current snapshot unless a later epoch already
// is. Out-of-order publication happens under group commit: writer B's
// cohort fsync (covering A's record too) can finish before A wakes up —
// B publishes both, and A's late store must not roll the snapshot back.
// A later epoch always contains every earlier epoch's facts, so the
// monotonic rule is safe.
func (s *System) publish(next *epochState) {
	for {
		cur := s.epoch.Load()
		if cur != nil && cur.id >= next.id {
			return
		}
		if s.epoch.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Epoch returns the identifier of the currently published fact-base
// version. It increases by one per update; two executions reporting the
// same epoch saw the same facts.
func (s *System) Epoch() uint64 { return s.snapshot().id }

// Load parses LDL source text (rules, facts and optional "goal?" query
// forms), loads the facts and gathers exact statistics. With
// WithDurability the facts recovered from the data directory (newest
// checkpoint plus log tail) are merged on top of the program's own, and
// subsequent InsertFacts batches are write-ahead logged.
func Load(src string, opts ...SystemOption) (_ *System, err error) {
	defer guard(&err)
	var cfg sysConfig
	for _, f := range opts {
		f(&cfg)
	}
	prog, queries, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	// Predicates mixing facts and rules are normalized so program
	// rewrites (magic, counting) keep their facts.
	prog, err = lang.Normalize(prog)
	if err != nil {
		return nil, err
	}
	s := &System{prog: prog, queries: queries, observed: map[string]stats.RelStats{}}
	s.term = 1 // terms start at 1; durable boots raise it from recovery
	s.matCfg = cfg.mat
	if err := s.matSetup(); err != nil {
		return nil, err
	}
	if cfg.segDir != "" {
		// The storage tier builds the database itself: segment parts
		// must attach before any tail row (program facts included).
		if cfg.walDir != "" && cfg.walDir != cfg.segDir {
			return nil, fmt.Errorf("ldl: WithStorageDir(%q) conflicts with WithDurability(%q): the log lives in the storage directory", cfg.segDir, cfg.walDir)
		}
		if err := s.attachStorage(cfg); err != nil {
			return nil, err
		}
		return s, nil
	}
	db := store.NewDatabase()
	if err := db.LoadFacts(prog); err != nil {
		return nil, err
	}
	if cfg.walDir != "" {
		if err := s.attachWAL(db, cfg); err != nil {
			return nil, err
		}
		return s, nil
	}
	ep := newEpoch(1, db, stats.Gather(db))
	if err := s.materializeBoot(ep); err != nil {
		return nil, err
	}
	s.epoch.Store(ep)
	return s, nil
}

// InsertFacts parses src — which must contain only facts — and
// publishes a new epoch containing them. The current epoch is forked
// copy-on-write: only the relations the batch touches are duplicated,
// and only their statistics are re-gathered (from the store's
// incrementally maintained exact counters), so the cost of an update is
// proportional to the touched relations, not the database. Concurrent
// readers keep their snapshots; the new facts are visible to executions
// that start after InsertFacts returns. It returns the number of
// genuinely new tuples and the new epoch id.
func (s *System) InsertFacts(src string) (added int, epoch uint64, err error) {
	defer guard(&err)
	prog, queries, err := parser.ParseProgram(src)
	if err != nil {
		return 0, 0, err
	}
	if len(queries) > 0 {
		return 0, 0, fmt.Errorf("ldl: InsertFacts: source contains a query form")
	}
	if len(prog.Rules) > 0 {
		return 0, 0, fmt.Errorf("ldl: InsertFacts: %s is a rule, not a fact", prog.Rules[0].Head)
	}
	touched := map[string]bool{}
	for _, c := range prog.Facts {
		if s.prog.IsDerived(c.Head.Tag()) {
			return 0, 0, fmt.Errorf("ldl: InsertFacts: %s is a derived predicate", c.Head.Tag())
		}
		touched[c.Head.Tag()] = true
	}
	// Phase 1, under writeMu: chain a new epoch onto the head and append
	// its log record without syncing. The critical section contains no
	// fsync, so concurrent writers pile their records into the same
	// segment back to back — the cohort one group commit covers.
	var next *epochState
	var lsn int64
	if err := func() error {
		s.writeMu.Lock()
		defer s.writeMu.Unlock()
		if s.readOnly {
			return &ReadOnlyError{Leader: s.leaderAddr}
		}
		ep := s.headState()
		db2 := ep.db.Fork()
		// Per-relation watermarks: the length each touched relation had
		// before this batch, for the added count and for the catalog's
		// incremental acyclicity recheck over exactly the appended suffix.
		marks := make(map[string]int, len(touched))
		before := 0
		for tag := range touched {
			if r := db2.Relation(tag); r != nil {
				marks[tag] = r.Len()
				before += r.Len()
			} else {
				marks[tag] = 0
			}
		}
		if err := db2.LoadFacts(prog); err != nil {
			return err
		}
		after := 0
		for tag := range touched {
			after += db2.Relation(tag).Len()
		}
		added = after - before
		next = newEpoch(ep.id+1, db2, stats.Update(ep.cat, db2, marks))
		if s.wal != nil {
			var err error
			if lsn, err = s.logBatch(next.id, prog.Facts); err != nil {
				return err // nothing appended: head unchanged, batch rejected
			}
			s.headLSN = lsn
		}
		// Carry the materialized views onto the new epoch by continuing
		// the previous fixpoint from exactly this batch's rows. Done
		// before the epoch is chained so views and facts publish together.
		s.maintainViews(next, ep)
		s.head = next
		return nil
	}(); err != nil {
		return 0, 0, err
	}
	// Phase 2, outside writeMu: write-ahead ordering. The batch must be
	// durable (per the fsync policy) before any reader can observe its
	// epoch. Commit group-commits: one cohort leader fsyncs for every
	// record appended meanwhile. On failure the epoch is not published —
	// the caller sees the error and the published state keeps the last
	// acknowledged prefix (the log is wedged, so no later batch can
	// publish over the hole either).
	if s.wal != nil {
		if err := s.wal.Commit(lsn); err != nil {
			return 0, 0, fmt.Errorf("ldl: InsertFacts: write-ahead log: %w", err)
		}
	}
	s.publish(next)
	s.maybeCheckpoint()
	return added, next.id, nil
}

// EnableStatsFeedback turns on the execution→cost-model feedback loop:
// after each materializing execution the exact cardinality and live
// per-column distinct counts of every fully computed derived predicate
// are recorded, and later Optimize/Prepare calls use them in place of
// the static analytic estimates. Off by default so that plan choice is
// a pure function of the loaded facts (the reproducibility property the
// optimizer tests rely on); the serving layer turns it on.
func (s *System) EnableStatsFeedback(on bool) { s.feedback.Store(on) }

// effectiveCat returns the epoch catalog, overlaid with the observed
// derived-extension statistics when feedback is enabled.
func (s *System) effectiveCat(ep *epochState) *stats.Catalog {
	if !s.feedback.Load() {
		return ep.cat
	}
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	if len(s.observed) == 0 {
		return ep.cat
	}
	cat := ep.cat.Clone()
	for tag, st := range s.observed {
		cat.Set(tag, st)
	}
	return cat
}

// recordObserved walks the engine's derived relations after a run and
// records them into the feedback overlay. A derived tag carrying the
// all-free adornment (pred.ff…f) is, by construction of the rewrites,
// the complete extension of pred — its exact cardinality and distinct
// counts are ground truth for the cost model, recorded under the plain
// tag and overwritten freely. A partially bound adornment (pred.bf…)
// is the extension restricted by this execution's constants; it is
// recorded under the adorned tag itself — which is exactly what
// statsOf looks up when costing the rewritten program of a later query
// of the same form — aggregated as the max over the constants seen, the
// safe estimate for an arbitrary future binding.
func (s *System) recordObserved(e *eval.Engine) {
	if !s.feedback.Load() {
		return
	}
	for _, tag := range e.DerivedTags() {
		slash := strings.LastIndexByte(tag, '/')
		if slash < 0 {
			continue
		}
		name := tag[:slash]
		// The magic rewrite materializes the restricted extension of an
		// adorned predicate as a$pred.adorn — strip the prefix so it is
		// recorded under the adorned tag itself (the tag statsOf costs).
		// The other rewrite auxiliaries (m$ seeds, c$ supplementaries,
		// q$ answer projections) are not predicate extensions: skip.
		if rest, ok := strings.CutPrefix(name, "a$"); ok {
			name = rest
		} else if strings.ContainsRune(name, '$') {
			continue
		}
		dot := strings.LastIndexByte(name, '.')
		if dot < 0 {
			continue
		}
		pat := name[dot+1:]
		if len(pat) == 0 || strings.Count(pat, "f")+strings.Count(pat, "b") != len(pat) {
			continue // not an adornment pattern
		}
		r := e.RelationFor(tag)
		if r == nil || r.Len() == 0 {
			continue
		}
		st := stats.GatherOne(r)
		s.obsMu.Lock()
		if strings.Count(pat, "f") == len(pat) {
			// Full extension: ground truth, latest run wins.
			s.observed[name[:dot]+tag[slash:]] = st
		} else {
			// Bound form: max over constants.
			key := name + tag[slash:]
			if old, ok := s.observed[key]; !ok || st.Card > old.Card {
				s.observed[key] = st
			}
		}
		s.obsMu.Unlock()
	}
}

// Queries returns the query forms embedded in the source ("goal?").
func (s *System) Queries() []string {
	out := make([]string, len(s.queries))
	for i, q := range s.queries {
		out[i] = q.Goal.String()
	}
	return out
}

// Relations lists the base and loaded relations with cardinalities.
func (s *System) Relations() []string {
	ep := s.snapshot()
	var out []string
	for _, tag := range ep.db.Tags() {
		out = append(out, fmt.Sprintf("%s (%d tuples)", tag, ep.db.Relation(tag).Len()))
	}
	sort.Strings(out)
	return out
}

// SetStats overrides the statistics of one relation — the hook
// experiments use to explore synthetic "states of the database". Like
// every statistics change it publishes a new epoch (same facts, new
// catalog), so prepared plans keyed on the epoch re-optimize.
func (s *System) SetStats(tag string, card float64, distinct []float64) {
	s.writeMu.Lock()
	ep := s.headState() // chain off head: an in-flight commit's facts must stay in the chain
	cat := ep.cat.Clone()
	cat.Set(tag, stats.RelStats{Card: card, Distinct: distinct})
	next := newEpoch(ep.id+1, ep.db, cat)
	next.mat = ep.mat // same facts, same views
	s.head = next
	lsn := s.headLSN
	s.writeMu.Unlock()
	if s.wal != nil && lsn > 0 {
		// The chained epoch carries facts whose commit may still be in
		// flight; wait for their durability before publishing over them.
		if s.wal.Commit(lsn) != nil {
			return // log wedged: the stats tweak dies with the write path
		}
	}
	s.publish(next)
}

// Option configures one Optimize call.
type Option func(*options)

type options struct {
	strategy  Strategy
	seed      int64
	flatten   bool
	parallel  int
	noKernels bool
	batch     int

	// Resource governor configuration. Zero values mean "no limit";
	// with everything zero no governor is built and the hot paths pay
	// only a nil check.
	ctx           context.Context
	timeout       time.Duration
	maxTuples     int
	maxIterations int
	optStates     int
}

// governor builds the resource governor for one call. Each call gets a
// fresh deadline (now + timeout), so a Plan optimized under a timeout
// grants every Execute the full duration again.
func (o *options) governor() *resource.Governor {
	b := resource.Budget{
		MaxTuples:     o.maxTuples,
		MaxIterations: o.maxIterations,
		MaxStates:     o.optStates,
	}
	if o.timeout > 0 {
		b.Deadline = time.Now().Add(o.timeout)
	}
	return resource.New(o.ctx, b)
}

// WithStrategy selects the search strategy (default exhaustive).
func WithStrategy(st Strategy) Option { return func(o *options) { o.strategy = st } }

// WithSeed seeds the stochastic strategy.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithContext makes the call observe ctx: cancellation surfaces as
// ErrCanceled, a context deadline as ErrTimeout. The check is
// amortized (the clock is read every few hundred derivations), so
// cancellation takes effect within microseconds, not instantly.
func WithContext(ctx context.Context) Option { return func(o *options) { o.ctx = ctx } }

// WithTimeout bounds the wall-clock time of each governed call
// (Optimize, and each Execute separately); exceeding it returns
// ErrTimeout wrapping a *ResourceError.
func WithTimeout(d time.Duration) Option { return func(o *options) { o.timeout = d } }

// WithMaxTuples bounds how many tuples an execution may derive across
// all relations; exceeding it returns ErrTupleBudget. It bounds space
// as well as time: every derived tuple is materialized.
func WithMaxTuples(n int) Option { return func(o *options) { o.maxTuples = n } }

// WithMaxIterations bounds the number of fixpoint rounds; exceeding it
// returns ErrIterationBudget.
func WithMaxIterations(n int) Option { return func(o *options) { o.maxIterations = n } }

// WithOptimizerBudget bounds the plan-search effort of Optimize to n
// explored states (join orders costed, c-permutations priced). On
// exhaustion the optimizer degrades instead of failing: rule-ordering
// search falls back to the quadratic KBZ strategy and the recursive
// -clique search keeps the best candidate priced so far. Downgrades are
// recorded in Plan.Explain. KBZ itself is exempt (it is the floor of
// the ladder), so Optimize still returns a plan unless time runs out.
func WithOptimizerBudget(n int) Option { return func(o *options) { o.optStates = n } }

// WithParallel evaluates the bottom-up fixpoint on n workers:
// independent recursive cliques of the follows order run concurrently,
// and rule applications within one fixpoint round fan out across the
// pool. n <= 1 keeps the sequential reference engine (the default);
// n < 0 sizes the pool by GOMAXPROCS. Query answers are identical in
// every mode — plans, Explain output and answer order do not change,
// only evaluation wall-clock. Work counters (ExecStats) remain exact,
// but Iterations may differ from the sequential engine's because
// parallel rounds see derivations one barrier later.
func WithParallel(n int) Option { return func(o *options) { o.parallel = n } }

// WithCompiledKernels controls the compiled join-kernel execution path
// (on by default). When on, each rule whose body fits the positional
// register-frame representation is compiled once per recursive clique
// into a join program — constants, bound-variable probes and repeated-
// variable checks resolved per column at compile time — and executed
// without substitution maps or per-candidate allocation; rules needing
// real unification (non-ground compound arguments, constructed heads)
// automatically use the generic interpreter. Answers are identical
// either way; WithCompiledKernels(false) is the A/B escape hatch.
func WithCompiledKernels(on bool) Option { return func(o *options) { o.noKernels = !on } }

// WithBatchSize sets the block size of the vectorized kernel executor
// (default 256 rows). Compiled join programs process a columnar frame
// of up to n delta rows per step — probes, comparisons and head
// insertion run as tight loops over dense interned-ID columns instead
// of one register frame at a time. n = 1 restores tuple-at-a-time
// execution; answers, errors and work counters are identical at every
// size, so the flag is a pure performance knob (and the A/B escape
// hatch for the vectorized path).
func WithBatchSize(n int) Option {
	return func(o *options) {
		if n < 1 {
			n = 1
		}
		o.batch = n
	}
}

// WithFlattening enables the §8.3 rescue: when a query form has no
// safe execution, non-recursive single-rule predicates are unfolded
// into their callers (the FU transformation applied as rewriting) and
// the search retried — the extension the paper sketches for later
// optimizer versions.
func WithFlattening() Option { return func(o *options) { o.flatten = true } }

// Plan is an optimized (and compilable) execution for one query form.
// It captures the epoch it was optimized against: Execute runs on that
// snapshot, so a Plan's answers are stable under concurrent InsertFacts.
type Plan struct {
	sys    *System
	goal   lang.Literal
	epoch  *epochState
	result *core.Result
	opts   options // budgets carry over from Optimize to each Execute
	// Optimizer diagnostics.
	MemoLookups int
	MemoHits    int
}

// Optimize compiles and optimizes one query form, e.g. "sg(john, Y)".
// It never fails on unsafe queries — it returns a Plan whose Safe()
// reports false with a Reason(); Execute then refuses to run.
func (s *System) Optimize(goal string, opts ...Option) (_ *Plan, err error) {
	defer guard(&err)
	var o options
	for _, f := range opts {
		f(&o)
	}
	strat, err := o.strategy.impl(o.seed)
	if err != nil {
		return nil, err
	}
	lit, err := parser.ParseLiteral(goal)
	if err != nil {
		return nil, err
	}
	ep := s.snapshot()
	opt, err := core.New(s.prog, s.effectiveCat(ep), strat)
	if err != nil {
		return nil, err
	}
	opt.Gov = o.governor()
	var res *core.Result
	if o.flatten {
		res, err = opt.OptimizeFlattened(lang.Query{Goal: lit}, 8)
	} else {
		res, err = opt.Optimize(lang.Query{Goal: lit})
	}
	if err != nil {
		return nil, err
	}
	return &Plan{sys: s, goal: lit, epoch: ep, result: res, opts: o, MemoLookups: opt.MemoLookups, MemoHits: opt.MemoHits}, nil
}

// Safe reports whether a safe (terminating) execution was found.
func (p *Plan) Safe() bool { return p.result.Safe }

// Reason explains why the query is unsafe (empty when Safe).
func (p *Plan) Reason() string { return p.result.Reason }

// Cost is the estimated cost of the chosen execution (+Inf if unsafe).
func (p *Plan) Cost() float64 { return float64(p.result.Cost) }

// Explain renders the chosen processing tree (Figure 4-1 style:
// squares materialize, triangles pipeline, CC marks recursive cliques).
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s?\n", p.goal)
	if !p.result.Safe {
		fmt.Fprintf(&b, "UNSAFE: %s\n", p.result.Reason)
		return b.String()
	}
	fmt.Fprintf(&b, "estimated cost: %.1f, cardinality: %.1f\n", float64(p.result.Cost), p.result.Card)
	// Downgrade notes accumulate in search-visit order, which the
	// parallel optimizer does not fix; sort so Explain is deterministic.
	notes := append([]string(nil), p.result.Downgrades...)
	sort.Strings(notes)
	for _, d := range notes {
		fmt.Fprintf(&b, "note: %s\n", d)
	}
	b.WriteString(p.result.Plan.Render())
	return b.String()
}

// ExecStats reports how much work an execution did.
type ExecStats struct {
	TuplesDerived int
	Iterations    int
	Unifications  int64
	Lookups       int64
	// KernelCompiles counts rule bodies compiled to join kernels during
	// this execution. A Prepared execution reuses its precompiled
	// kernels, so it reports 0 here — the counter is the observable
	// proof that the prepared path skips compilation.
	KernelCompiles int
	// KernelFallbacks counts rules that could not be compiled to join
	// kernels and ran on the generic interpreter instead. With kernels
	// disabled it is 0 (nothing attempted compilation); the counter
	// exposes exactly which executions paid the generic path.
	KernelFallbacks int
	// Blocks counts columnar frames dispatched between steps by the
	// vectorized executor; 0 means every application ran
	// tuple-at-a-time (batch size 1, or head-aliasing applications).
	Blocks int64
	// Epoch identifies the fact-base snapshot the execution ran
	// against.
	Epoch uint64
}

// Execute compiles the plan to a program, evaluates it and returns the
// answers as rows of rendered terms, in canonical order.
func (p *Plan) Execute() ([][]string, error) {
	rows, _, err := p.ExecuteStats()
	return rows, err
}

// ExecuteStats is Execute plus work counters.
func (p *Plan) ExecuteStats() (_ [][]string, es ExecStats, err error) {
	defer guard(&err)
	compiled, err := p.result.Compile()
	if err != nil {
		return nil, es, err
	}
	prog2, err := lang.NewProgram(compiled.Clauses)
	if err != nil {
		return nil, es, err
	}
	// Fork, not Clone: the compiled program's seed facts go into fresh
	// or copy-on-write relations, so the epoch snapshot is never
	// touched and the per-execute setup cost is O(relations touched by
	// seeds), not O(database).
	db2 := p.epoch.db.Fork()
	if err := db2.LoadFacts(prog2); err != nil {
		return nil, es, err
	}
	methodFor := methodOverrides(compiled.FixMethods, prog2)
	// Budgets turn a diverging execution (which the safety analysis
	// should have prevented) into an error instead of a hang. The
	// governor layers the caller's (typically tighter) budget on top.
	e, err := eval.New(prog2, db2, eval.Options{
		Method: eval.SemiNaive, MethodFor: methodFor,
		MaxTuples: 5_000_000, MaxIterations: 200_000,
		Parallel: p.opts.parallel, SizeHints: p.epoch.hints,
		DisableKernels: p.opts.noKernels,
		BatchSize:      p.opts.batch,
		Gov:            p.opts.governor(),
	})
	if err != nil {
		return nil, es, err
	}
	if err := e.Run(); err != nil {
		return nil, es, err
	}
	ansPred := compiled.AnswerTag[:strings.LastIndexByte(compiled.AnswerTag, '/')]
	ts, err := e.Answers(lang.Query{Goal: lang.Literal{Pred: ansPred, Args: p.goal.Args}})
	if err != nil {
		return nil, es, err
	}
	p.sys.recordObserved(e)
	es = execStats(e, p.epoch.id)
	return renderRows(ts), es, nil
}

// methodOverrides maps the plan's per-fixpoint recursive-method choices
// onto the compiled program's predicate tags (naive evaluation is the
// only one the engine needs told about; semi-naive is its default).
func methodOverrides(fixMethods map[string]cost.RecMethod, prog2 *lang.Program) map[string]eval.Method {
	methodFor := map[string]eval.Method{}
	for tag, meth := range fixMethods {
		if meth != cost.RecNaive {
			continue
		}
		base := tag[:strings.IndexByte(tag, '/')]
		for _, t2 := range prog2.PredTags() {
			name := t2[:strings.LastIndexByte(t2, '/')]
			if name == base || strings.HasPrefix(name, base+".") {
				methodFor[t2] = eval.Naive
			}
		}
	}
	return methodFor
}

func execStats(e *eval.Engine, epoch uint64) ExecStats {
	return ExecStats{
		TuplesDerived:   e.Counters.TuplesDerived,
		Iterations:      e.Counters.Iterations,
		Unifications:    e.Counters.Unifications,
		Lookups:         e.Counters.Lookups,
		KernelCompiles:  e.Counters.KernelCompiles,
		KernelFallbacks: e.Counters.KernelFallbacks,
		Blocks:          e.Counters.Blocks,
		Epoch:           epoch,
	}
}

func renderRows(ts []store.Tuple) [][]string {
	rows := make([][]string, len(ts))
	for i, t := range ts {
		row := make([]string, len(t))
		for j, v := range t {
			row[j] = v.String()
		}
		rows[i] = row
	}
	return rows
}

// Query is the one-shot convenience: optimize with defaults and run.
func (s *System) Query(goal string, opts ...Option) ([][]string, error) {
	p, err := s.Optimize(goal, opts...)
	if err != nil {
		return nil, err
	}
	if !p.Safe() {
		return nil, fmt.Errorf("ldl: query %s is unsafe: %s", goal, p.Reason())
	}
	return p.Execute()
}

// EvaluateTopDown answers the goal with the tabled top-down evaluator:
// goal-directed resolution with one answer table per call pattern — the
// literal realization of pipelined execution, and an independent oracle
// against the bottom-up engine. It can answer bound query forms (e.g. a
// list-consuming recursion with the list supplied) whose bottom-up
// fixpoint does not exist.
func (s *System) EvaluateTopDown(goal string, opts ...Option) (_ [][]string, es ExecStats, err error) {
	defer guard(&err)
	var o options
	for _, f := range opts {
		f(&o)
	}
	lit, err := parser.ParseLiteral(goal)
	if err != nil {
		return nil, es, err
	}
	ep := s.snapshot()
	td := eval.NewTopDown(s.prog, ep.db, eval.Options{MaxTuples: 5_000_000, MaxIterations: 200_000, Gov: o.governor()})
	ts, err := td.Query(lang.Query{Goal: lit})
	if err != nil {
		return nil, es, err
	}
	es = ExecStats{
		TuplesDerived: td.Counters.TuplesDerived,
		Iterations:    td.Counters.Iterations,
		Unifications:  td.Counters.Unifications,
		Lookups:       td.Counters.Lookups,
		Epoch:         ep.id,
	}
	return renderRows(ts), es, nil
}

// EvaluateUnoptimized runs the query on the original program with plain
// semi-naive evaluation and no optimization — the baseline the paper's
// optimizer improves on, exposed for comparison and testing.
func (s *System) EvaluateUnoptimized(goal string, opts ...Option) (_ [][]string, es ExecStats, err error) {
	defer guard(&err)
	var o options
	for _, f := range opts {
		f(&o)
	}
	lit, err := parser.ParseLiteral(goal)
	if err != nil {
		return nil, es, err
	}
	ep := s.snapshot()
	e, err := eval.New(s.prog, ep.db, eval.Options{
		Method: eval.SemiNaive, Parallel: o.parallel,
		SizeHints: ep.hints, DisableKernels: o.noKernels,
		BatchSize: o.batch,
		Gov:       o.governor(),
	})
	if err != nil {
		return nil, es, err
	}
	ts, err := e.Answers(lang.Query{Goal: lit})
	if err != nil {
		return nil, es, err
	}
	return renderRows(ts), execStats(e, ep.id), nil
}
