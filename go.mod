module ldl

go 1.22
