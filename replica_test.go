package ldl

// Tests for the replication-facing System API: follower apply mode
// (ApplyReplicated), read-only/promote, the WAL health snapshot, and
// the group-commit write path exercised through concurrent InsertFacts.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ldl/internal/term"
	"ldl/internal/wal"
)

// shipBatch builds the wal.Batch an InsertFacts of durBatch(i) would
// log under the given epoch — the follower-side view of one shipped
// record.
func shipBatch(epoch uint64, i int) wal.Batch {
	return wal.Batch{Epoch: epoch, Rels: []wal.RelFacts{{
		Tag: "par/2", Arity: 2,
		Tuples: [][]term.Term{
			{term.Atom(fmt.Sprintf("x%d", i)), term.Atom(fmt.Sprintf("y%d", i))},
			{term.Atom(fmt.Sprintf("y%d", i)), term.Atom(fmt.Sprintf("z%d", i))},
		},
	}}}
}

func TestApplyReplicatedFollowsLeaderEpochs(t *testing.T) {
	follower, err := Load(durSrc)
	if err != nil {
		t.Fatal(err)
	}
	follower.SetReadOnly("leader:1234")

	// Batches publish under the leader's epoch numbers.
	for i, epoch := range []uint64{2, 3, 4} {
		if err := follower.ApplyReplicated(shipBatch(epoch, i)); err != nil {
			t.Fatalf("apply epoch %d: %v", epoch, err)
		}
		if follower.Epoch() != epoch {
			t.Fatalf("follower epoch = %d after applying %d", follower.Epoch(), epoch)
		}
	}
	checkPrefix(t, parTuples(follower), 3, 3)

	// Duplicate redelivery (reconnect replays) is a no-op, not an error.
	if err := follower.ApplyReplicated(shipBatch(3, 1)); err != nil {
		t.Fatalf("duplicate apply: %v", err)
	}
	if follower.Epoch() != 4 {
		t.Fatalf("duplicate apply moved the epoch to %d", follower.Epoch())
	}
	checkPrefix(t, parTuples(follower), 3, 3)

	// The applied facts serve queries — the whole point of a read replica.
	rows, err := follower.Query("anc(x0, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("replica query returned %d rows, want 2", len(rows))
	}

	// A batch touching a derived predicate means the programs diverged:
	// refuse.
	bad := wal.Batch{Epoch: 9, Rels: []wal.RelFacts{{Tag: "anc/2", Arity: 2,
		Tuples: [][]term.Term{{term.Atom("a"), term.Atom("b")}}}}}
	if err := follower.ApplyReplicated(bad); err == nil {
		t.Fatal("derived-predicate batch applied")
	}
}

func TestReadOnlyRefusalAndPromote(t *testing.T) {
	follower, err := Load(durSrc)
	if err != nil {
		t.Fatal(err)
	}
	follower.SetReadOnly("leader:1234")
	if ro, leader := follower.ReadOnly(); !ro || leader != "leader:1234" {
		t.Fatalf("ReadOnly() = %v, %q", ro, leader)
	}

	_, _, err = follower.InsertFacts(durBatch(0))
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("InsertFacts on replica = %v, want ErrReadOnly", err)
	}
	var roe *ReadOnlyError
	if !errors.As(err, &roe) || roe.Leader != "leader:1234" {
		t.Fatalf("error carries leader %q, want leader:1234", roe.Leader)
	}

	// Catch the follower up, then promote: writes resume, numbered after
	// the last applied epoch.
	if err := follower.ApplyReplicated(shipBatch(5, 0)); err != nil {
		t.Fatal(err)
	}
	if got := follower.Promote(); got != 5 {
		t.Fatalf("Promote() = %d, want 5", got)
	}
	if ro, _ := follower.ReadOnly(); ro {
		t.Fatal("still read-only after Promote")
	}
	_, epoch, err := follower.InsertFacts(durBatch(1))
	if err != nil || epoch != 6 {
		t.Fatalf("first write after promote: epoch=%d err=%v, want 6", epoch, err)
	}
	checkPrefix(t, parTuples(follower), 2, 2)
}

func TestDurableFollowerLogsAndRecovers(t *testing.T) {
	fs := wal.NewMemFS()
	follower, err := Load(durSrc, WithDurability("data"), withWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	follower.SetReadOnly("leader:1234")
	for i, epoch := range []uint64{2, 3, 4} {
		if err := follower.ApplyReplicated(shipBatch(epoch, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash without Close: the follower's own WAL must have the applied
	// batches (write-ahead ordering holds on the replica too).
	reborn, err := Load(durSrc, WithDurability("data"), withWALFS(fs.Crash(true)))
	if err != nil {
		t.Fatal(err)
	}
	if reborn.Epoch() != 4 {
		t.Fatalf("recovered follower at epoch %d, want 4", reborn.Epoch())
	}
	checkPrefix(t, parTuples(reborn), 3, 3)
}

// syncCounter wraps a wal.FS counting (and slowing) File.Sync — the
// observable group commit shrinks.
type syncCounter struct {
	wal.FS
	syncs atomic.Int64
}

func (s *syncCounter) OpenAppend(name string) (wal.File, int64, error) {
	f, size, err := s.FS.OpenAppend(name)
	if err != nil {
		return nil, 0, err
	}
	return &countedFile{File: f, fs: s}, size, nil
}

type countedFile struct {
	wal.File
	fs *syncCounter
}

func (f *countedFile) Sync() error {
	f.fs.syncs.Add(1)
	time.Sleep(2 * time.Millisecond)
	return f.File.Sync()
}

func TestInsertFactsGroupCommit(t *testing.T) {
	mem := wal.NewMemFS()
	fs := &syncCounter{FS: mem}
	sys, err := Load(durSrc, WithDurability("data"), withWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	base := sys.Epoch()
	boot := fs.syncs.Load()

	const writers, perWriter = 8, 8
	const batches = writers * perWriter
	var wg sync.WaitGroup
	errs := make(chan error, batches)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, _, err := sys.InsertFacts(durBatch(w*perWriter + i)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("InsertFacts: %v", err)
	}

	syncs := fs.syncs.Load() - boot
	t.Logf("%d concurrent batches, %d fsyncs", batches, syncs)
	if syncs > batches/2 {
		t.Errorf("group commit did not amortize: %d fsyncs for %d batches", syncs, batches)
	}
	if got := sys.Epoch(); got != base+batches {
		t.Errorf("published epoch = %d, want %d", got, base+batches)
	}
	checkPrefix(t, parTuples(sys), batches, batches)

	// Every acknowledged batch survives losing the page cache — Commit
	// really did fsync before InsertFacts returned.
	reborn, err := Load(durSrc, WithDurability("data"), withWALFS(mem.Crash(true)))
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, parTuples(reborn), batches, batches)
}

func TestDurabilityStats(t *testing.T) {
	plain, err := Load(durSrc)
	if err != nil {
		t.Fatal(err)
	}
	if d := plain.Durability(); d.Durable || d.SegmentBytes != 0 {
		t.Fatalf("non-durable Durability() = %+v", d)
	}
	if _, _, ok := plain.WALAccess(); ok {
		t.Fatal("non-durable WALAccess ok")
	}

	mem := wal.NewMemFS()
	sys, err := Load(durSrc, WithDurability("data"), withWALFS(mem))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.InsertFacts(durBatch(0)); err != nil {
		t.Fatal(err)
	}
	d := sys.Durability()
	if !d.Durable || d.SegmentBytes == 0 || d.Wedged || d.LastCheckpoint != 0 {
		t.Fatalf("after one insert: %+v", d)
	}
	if dir, fs, ok := sys.WALAccess(); !ok || dir != "data" || fs != wal.FS(mem) {
		t.Fatalf("WALAccess = %q, %v, %v", dir, fs, ok)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if d := sys.Durability(); d.LastCheckpoint != sys.Epoch() {
		t.Fatalf("LastCheckpoint = %d, want %d", d.LastCheckpoint, sys.Epoch())
	}

	// A log failure wedges: the flag flips and writes fail, reads keep
	// working.
	mem.SetFailAt(1)
	if _, _, err := sys.InsertFacts(durBatch(1)); err == nil {
		t.Fatal("insert over failing log succeeded")
	}
	mem.SetFailAt(0)
	if d := sys.Durability(); !d.Wedged {
		t.Fatalf("after log failure: %+v", d)
	}
	if _, err := sys.Query("anc(seed_a, Y)"); err != nil {
		t.Fatalf("read on wedged system: %v", err)
	}
}
