package ldl

// Tests for the replication-facing System API: follower apply mode
// (ApplyReplicated), read-only/promote, the WAL health snapshot, and
// the group-commit write path exercised through concurrent InsertFacts.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ldl/internal/term"
	"ldl/internal/wal"
)

// shipBatch builds the wal.Batch an InsertFacts of durBatch(i) would
// log under the given epoch — the follower-side view of one shipped
// record.
func shipBatch(epoch uint64, i int) wal.Batch {
	return wal.Batch{Epoch: epoch, Rels: []wal.RelFacts{{
		Tag: "par/2", Arity: 2,
		Tuples: [][]term.Term{
			{term.Atom(fmt.Sprintf("x%d", i)), term.Atom(fmt.Sprintf("y%d", i))},
			{term.Atom(fmt.Sprintf("y%d", i)), term.Atom(fmt.Sprintf("z%d", i))},
		},
	}}}
}

func TestApplyReplicatedFollowsLeaderEpochs(t *testing.T) {
	follower, err := Load(durSrc)
	if err != nil {
		t.Fatal(err)
	}
	follower.SetReadOnly("leader:1234")

	// Batches publish under the leader's epoch numbers.
	for i, epoch := range []uint64{2, 3, 4} {
		if err := follower.ApplyReplicated(shipBatch(epoch, i)); err != nil {
			t.Fatalf("apply epoch %d: %v", epoch, err)
		}
		if follower.Epoch() != epoch {
			t.Fatalf("follower epoch = %d after applying %d", follower.Epoch(), epoch)
		}
	}
	checkPrefix(t, parTuples(follower), 3, 3)

	// Duplicate redelivery (reconnect replays) is a no-op, not an error.
	if err := follower.ApplyReplicated(shipBatch(3, 1)); err != nil {
		t.Fatalf("duplicate apply: %v", err)
	}
	if follower.Epoch() != 4 {
		t.Fatalf("duplicate apply moved the epoch to %d", follower.Epoch())
	}
	checkPrefix(t, parTuples(follower), 3, 3)

	// The applied facts serve queries — the whole point of a read replica.
	rows, err := follower.Query("anc(x0, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("replica query returned %d rows, want 2", len(rows))
	}

	// A batch touching a derived predicate means the programs diverged:
	// refuse.
	bad := wal.Batch{Epoch: 9, Rels: []wal.RelFacts{{Tag: "anc/2", Arity: 2,
		Tuples: [][]term.Term{{term.Atom("a"), term.Atom("b")}}}}}
	if err := follower.ApplyReplicated(bad); err == nil {
		t.Fatal("derived-predicate batch applied")
	}
}

func TestReadOnlyRefusalAndPromote(t *testing.T) {
	follower, err := Load(durSrc)
	if err != nil {
		t.Fatal(err)
	}
	follower.SetReadOnly("leader:1234")
	if ro, leader := follower.ReadOnly(); !ro || leader != "leader:1234" {
		t.Fatalf("ReadOnly() = %v, %q", ro, leader)
	}

	_, _, err = follower.InsertFacts(durBatch(0))
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("InsertFacts on replica = %v, want ErrReadOnly", err)
	}
	var roe *ReadOnlyError
	if !errors.As(err, &roe) || roe.Leader != "leader:1234" {
		t.Fatalf("error carries leader %q, want leader:1234", roe.Leader)
	}

	// Catch the follower up, then promote: writes resume, numbered after
	// the last applied epoch.
	if err := follower.ApplyReplicated(shipBatch(5, 0)); err != nil {
		t.Fatal(err)
	}
	epoch, pterm, err := follower.Promote()
	if err != nil || epoch != 5 {
		t.Fatalf("Promote() = %d, %d, %v, want epoch 5", epoch, pterm, err)
	}
	if pterm != 2 {
		t.Fatalf("Promote() term = %d, want 2 (terms start at 1)", pterm)
	}
	if ro, _ := follower.ReadOnly(); ro {
		t.Fatal("still read-only after Promote")
	}
	_, epoch, err = follower.InsertFacts(durBatch(1))
	if err != nil || epoch != 6 {
		t.Fatalf("first write after promote: epoch=%d err=%v, want 6", epoch, err)
	}
	checkPrefix(t, parTuples(follower), 2, 2)
}

func TestDurableFollowerLogsAndRecovers(t *testing.T) {
	fs := wal.NewMemFS()
	follower, err := Load(durSrc, WithDurability("data"), withWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	follower.SetReadOnly("leader:1234")
	for i, epoch := range []uint64{2, 3, 4} {
		if err := follower.ApplyReplicated(shipBatch(epoch, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash without Close: the follower's own WAL must have the applied
	// batches (write-ahead ordering holds on the replica too).
	reborn, err := Load(durSrc, WithDurability("data"), withWALFS(fs.Crash(true)))
	if err != nil {
		t.Fatal(err)
	}
	if reborn.Epoch() != 4 {
		t.Fatalf("recovered follower at epoch %d, want 4", reborn.Epoch())
	}
	checkPrefix(t, parTuples(reborn), 3, 3)
}

// syncCounter wraps a wal.FS counting (and slowing) File.Sync — the
// observable group commit shrinks.
type syncCounter struct {
	wal.FS
	syncs atomic.Int64
}

func (s *syncCounter) OpenAppend(name string) (wal.File, int64, error) {
	f, size, err := s.FS.OpenAppend(name)
	if err != nil {
		return nil, 0, err
	}
	return &countedFile{File: f, fs: s}, size, nil
}

type countedFile struct {
	wal.File
	fs *syncCounter
}

func (f *countedFile) Sync() error {
	f.fs.syncs.Add(1)
	time.Sleep(2 * time.Millisecond)
	return f.File.Sync()
}

func TestInsertFactsGroupCommit(t *testing.T) {
	mem := wal.NewMemFS()
	fs := &syncCounter{FS: mem}
	sys, err := Load(durSrc, WithDurability("data"), withWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	base := sys.Epoch()
	boot := fs.syncs.Load()

	const writers, perWriter = 8, 8
	const batches = writers * perWriter
	var wg sync.WaitGroup
	errs := make(chan error, batches)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, _, err := sys.InsertFacts(durBatch(w*perWriter + i)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("InsertFacts: %v", err)
	}

	syncs := fs.syncs.Load() - boot
	t.Logf("%d concurrent batches, %d fsyncs", batches, syncs)
	if syncs > batches/2 {
		t.Errorf("group commit did not amortize: %d fsyncs for %d batches", syncs, batches)
	}
	if got := sys.Epoch(); got != base+batches {
		t.Errorf("published epoch = %d, want %d", got, base+batches)
	}
	checkPrefix(t, parTuples(sys), batches, batches)

	// Every acknowledged batch survives losing the page cache — Commit
	// really did fsync before InsertFacts returned.
	reborn, err := Load(durSrc, WithDurability("data"), withWALFS(mem.Crash(true)))
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, parTuples(reborn), batches, batches)
}

func TestDurabilityStats(t *testing.T) {
	plain, err := Load(durSrc)
	if err != nil {
		t.Fatal(err)
	}
	if d := plain.Durability(); d.Durable || d.SegmentBytes != 0 {
		t.Fatalf("non-durable Durability() = %+v", d)
	}
	if _, _, ok := plain.WALAccess(); ok {
		t.Fatal("non-durable WALAccess ok")
	}

	mem := wal.NewMemFS()
	sys, err := Load(durSrc, WithDurability("data"), withWALFS(mem))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.InsertFacts(durBatch(0)); err != nil {
		t.Fatal(err)
	}
	d := sys.Durability()
	if !d.Durable || d.SegmentBytes == 0 || d.Wedged || d.LastCheckpoint != 0 {
		t.Fatalf("after one insert: %+v", d)
	}
	if dir, fs, ok := sys.WALAccess(); !ok || dir != "data" || fs != wal.FS(mem) {
		t.Fatalf("WALAccess = %q, %v, %v", dir, fs, ok)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if d := sys.Durability(); d.LastCheckpoint != sys.Epoch() {
		t.Fatalf("LastCheckpoint = %d, want %d", d.LastCheckpoint, sys.Epoch())
	}

	// A log failure wedges: the flag flips and writes fail, reads keep
	// working.
	mem.SetFailAt(1)
	if _, _, err := sys.InsertFacts(durBatch(1)); err == nil {
		t.Fatal("insert over failing log succeeded")
	}
	mem.SetFailAt(0)
	if d := sys.Durability(); !d.Wedged {
		t.Fatalf("after log failure: %+v", d)
	}
	if _, err := sys.Query("anc(seed_a, Y)"); err != nil {
		t.Fatalf("read on wedged system: %v", err)
	}
}

// TestTermFencing pins the System-level fencing invariant: once a term
// is observed, ApplyReplicated refuses any batch whose (authority) term
// is below it, counts the event, and leaves the epoch untouched.
func TestTermFencing(t *testing.T) {
	follower, err := Load(durSrc)
	if err != nil {
		t.Fatal(err)
	}
	follower.SetReadOnly("leader:1234")

	// A term-2 batch adopts the term on the way in.
	b := shipBatch(2, 0)
	b.Term = 2
	if err := follower.ApplyReplicated(b); err != nil {
		t.Fatal(err)
	}
	if follower.Term() != 2 {
		t.Fatalf("Term() = %d after term-2 batch, want 2", follower.Term())
	}

	// A batch from the deposed term-1 leader is fenced with the typed
	// error, and nothing about the system moves.
	stale := shipBatch(3, 1)
	stale.Term = 1
	err = follower.ApplyReplicated(stale)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-term apply = %v, want ErrFenced", err)
	}
	var fe *FencedError
	if !errors.As(err, &fe) || fe.Local != 2 || fe.Stream != 1 {
		t.Fatalf("FencedError = %+v, want Local=2 Stream=1", fe)
	}
	if follower.Epoch() != 2 || follower.FencedEvents() != 1 {
		t.Fatalf("after fence: epoch=%d fenced=%d, want 2 and 1", follower.Epoch(), follower.FencedEvents())
	}

	// Term 0 means a pre-term stream: never fenced (upgrades keep working).
	legacy := shipBatch(3, 1)
	if err := follower.ApplyReplicated(legacy); err != nil {
		t.Fatalf("term-0 apply: %v", err)
	}
	if follower.Epoch() != 3 {
		t.Fatalf("epoch = %d after legacy batch, want 3", follower.Epoch())
	}
}

// TestObserveTermDeposesLeader: a writable leader shown a higher term
// latches read-only — it has provably been superseded — and counts the
// fencing event. Observing a lower or equal term changes nothing.
func TestObserveTermDeposesLeader(t *testing.T) {
	sys, err := Load(durSrc)
	if err != nil {
		t.Fatal(err)
	}
	if sys.ObserveTerm(1) { // own term is already 1
		t.Fatal("ObserveTerm(1) deposed a term-1 leader")
	}
	if !sys.ObserveTerm(3) {
		t.Fatal("ObserveTerm(3) did not report deposition")
	}
	if ro, _ := sys.ReadOnly(); !ro {
		t.Fatal("leader still writable after observing a higher term")
	}
	if sys.Term() != 3 || sys.FencedEvents() != 1 {
		t.Fatalf("after deposition: term=%d fenced=%d, want 3 and 1", sys.Term(), sys.FencedEvents())
	}
	if _, _, err := sys.InsertFacts(durBatch(0)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on deposed leader = %v, want ErrReadOnly", err)
	}
	// A replica observing higher terms stays a replica; no double count.
	if sys.ObserveTerm(4) {
		t.Fatal("ObserveTerm on a replica reported deposition")
	}
	if sys.Term() != 4 || sys.FencedEvents() != 1 {
		t.Fatalf("replica observation: term=%d fenced=%d, want 4 and 1", sys.Term(), sys.FencedEvents())
	}
}

// TestPromotePersistsTermAcrossCrash: Promote writes the term record
// ahead of accepting writes, so a crash-restart of the promoted node
// comes back in the new term (and stays fenced against the old leader).
func TestPromotePersistsTermAcrossCrash(t *testing.T) {
	fs := wal.NewMemFS()
	follower, err := Load(durSrc, WithDurability("data"), withWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	follower.SetReadOnly("leader:1234")
	b := shipBatch(2, 0)
	b.Term = 1
	if err := follower.ApplyReplicated(b); err != nil {
		t.Fatal(err)
	}
	if _, pterm, err := follower.Promote(); err != nil || pterm != 2 {
		t.Fatalf("Promote() term = %d, %v, want 2", pterm, err)
	}
	if _, _, err := follower.InsertFacts(durBatch(1)); err != nil {
		t.Fatal(err)
	}

	// Crash without Close: recovery must land in term 2.
	reborn, err := Load(durSrc, WithDurability("data"), withWALFS(fs.Crash(true)))
	if err != nil {
		t.Fatal(err)
	}
	if reborn.Term() != 2 {
		t.Fatalf("recovered term = %d, want 2", reborn.Term())
	}
	if reborn.Epoch() != 3 {
		t.Fatalf("recovered epoch = %d, want 3", reborn.Epoch())
	}
	// The old term-1 leader reappearing is fenced by the reborn node.
	ghost := shipBatch(4, 2)
	ghost.Term = 1
	reborn.SetReadOnly("")
	if err := reborn.ApplyReplicated(ghost); !errors.Is(err, ErrFenced) {
		t.Fatalf("ghost leader apply = %v, want ErrFenced", err)
	}
}
