package ldl

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// stressSource is a knowledge base with enough structure for every
// evaluation path: linear recursion, stratified negation, arithmetic
// and a couple of independent base relations.
func stressSource() string {
	var b strings.Builder
	for i := 1; i <= 20; i++ {
		fmt.Fprintf(&b, "e(%d, %d).\n", i, i+1)
	}
	b.WriteString("e(5, 1).\n") // a cycle, so tc is dense
	for _, p := range []string{"up(a, p1).", "up(b, p1).", "up(p1, g1).", "dn(g1, q1).", "dn(q1, d).", "flat(g1, g1)."} {
		b.WriteString(p + "\n")
	}
	b.WriteString(`
tc(X, Y) <- e(X, Y).
tc(X, Y) <- e(X, Z), tc(Z, Y).
sg(X, Y) <- flat(X, Y).
sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
`)
	return b.String()
}

// TestSharedDatabaseStress hammers one System from many goroutines at
// once, mixing every public evaluation entry point — optimized Query,
// the unoptimized bottom-up engine (sequential and parallel), and the
// tabled top-down evaluator. All paths read the same base relations,
// including racing to build the same lazy column indexes; run under
// -race this is the concurrency contract test for the store layer.
func TestSharedDatabaseStress(t *testing.T) {
	sys, err := Load(stressSource())
	if err != nil {
		t.Fatal(err)
	}
	// A second System over the same program with materialized views:
	// its arms race incremental view maintenance (concurrent writers)
	// against view-serving reads. The writers insert edges in fresh
	// two-node components disconnected from node 1 and the sg ontology,
	// so every insert does real delta propagation into tc while the
	// reference answers below stay valid throughout.
	msys, err := Load(stressSource(), WithMaterialized())
	if err != nil {
		t.Fatal(err)
	}
	// Reference answers, computed once, sequentially.
	wantTC, _, err := sys.EvaluateUnoptimized("tc(1, Y)")
	if err != nil {
		t.Fatal(err)
	}
	wantSG, err := sys.Query("sg(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(wantTC) == 0 || len(wantSG) == 0 {
		t.Fatalf("empty reference answers: tc=%d sg=%d", len(wantTC), len(wantSG))
	}

	const goroutines = 24
	const rounds = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var got [][]string
				var want [][]string
				var err error
				// The arms cover {compiled, generic} × {sequential,
				// parallel} bottom-up plus the optimized, top-down and
				// materialized-view paths, all racing over shared
				// databases; two arms write through the incremental
				// maintenance path while the view arms read.
				switch (g + r) % 10 {
				case 0:
					got, err = sys.Query("sg(a, Y)")
					want = wantSG
				case 1:
					got, _, err = sys.EvaluateUnoptimized("tc(1, Y)")
					want = wantTC
				case 2:
					got, _, err = sys.EvaluateUnoptimized("tc(1, Y)", WithParallel(4))
					want = wantTC
				case 3:
					got, _, err = sys.EvaluateTopDown("tc(1, Y)")
					want = wantTC
				case 4:
					got, _, err = sys.EvaluateUnoptimized("tc(1, Y)", WithCompiledKernels(false))
					want = wantTC
				case 5:
					got, _, err = sys.EvaluateUnoptimized("tc(1, Y)", WithParallel(4), WithCompiledKernels(false))
					want = wantTC
				case 6:
					// Tuple-at-a-time kernels (the default is batched;
					// this arm pins the vectorized path off).
					got, _, err = sys.EvaluateUnoptimized("tc(1, Y)", WithBatchSize(1))
					want = wantTC
				case 7:
					// Vectorized kernels with a tiny block, parallel:
					// maximizes flush-boundary crossings under -race.
					got, _, err = sys.EvaluateUnoptimized("sg(a, Y)", WithParallel(4), WithBatchSize(4))
					want = wantSG
				case 8:
					// Serve from the materialized views while other
					// goroutines run incremental maintenance.
					var ok bool
					got, ok, err = msys.AnswersFromViews("tc(1, Y)")
					if err == nil && !ok {
						err = fmt.Errorf("views could not serve tc(1, Y)")
					}
					want = wantTC
				case 9:
					// Write through incremental maintenance (a fresh
					// disconnected edge, then repeats of it — one real
					// delta, then duplicate-batch epochs), and read the
					// views the maintenance just published.
					if _, _, err = msys.InsertFacts(fmt.Sprintf("e(%d, %d).", 1000+10*g, 1001+10*g)); err == nil {
						var ok bool
						got, ok, err = msys.AnswersFromViews("sg(a, Y)")
						if err == nil && !ok {
							err = fmt.Errorf("views could not serve sg(a, Y)")
						}
						want = wantSG
					}
				}
				if err != nil {
					errc <- fmt.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					errc <- fmt.Errorf("goroutine %d round %d: got %v want %v", g, r, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// The maintenance under contention must have stayed on the
	// incremental path (no negation in this program, so a scratch
	// fallback would indicate a lost prior epoch), and the final views
	// must still agree with the reference answers.
	ist := msys.IVMStats()
	if ist.ScratchFallbacks != 0 {
		t.Errorf("materialized stress fell back to scratch %d times", ist.ScratchFallbacks)
	}
	if ist.Epochs < 2 {
		t.Errorf("materialized stress published only %d epochs", ist.Epochs)
	}
	if got, ok, err := msys.AnswersFromViews("tc(1, Y)"); err != nil || !ok || !reflect.DeepEqual(got, wantTC) {
		t.Errorf("final view answers diverged: ok=%v err=%v got %v want %v", ok, err, got, wantTC)
	}
}

// TestParallelExecuteEquivalence checks the public-API contract of
// WithParallel: an optimized plan executed in parallel returns exactly
// the rows of the sequential execution, and Explain output (the plan)
// is unaffected by the option.
func TestParallelExecuteEquivalence(t *testing.T) {
	sys, err := Load(stressSource())
	if err != nil {
		t.Fatal(err)
	}
	for _, goal := range []string{"sg(a, Y)", "tc(1, Y)", "tc(X, Y)"} {
		seqPlan, err := sys.Optimize(goal)
		if err != nil {
			t.Fatal(err)
		}
		parPlan, err := sys.Optimize(goal, WithParallel(4))
		if err != nil {
			t.Fatal(err)
		}
		if seqPlan.Explain() != parPlan.Explain() {
			t.Errorf("%s: WithParallel changed the plan:\n%s\nvs\n%s", goal, seqPlan.Explain(), parPlan.Explain())
		}
		seq, err := seqPlan.Execute()
		if err != nil {
			t.Fatal(err)
		}
		par, err := parPlan.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: parallel rows differ:\n got %v\nwant %v", goal, par, seq)
		}
	}
}
