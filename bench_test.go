package ldl_test

// The benchmark harness: one benchmark per experiment in DESIGN.md's
// per-experiment index (the tables cmd/ldlbench prints in full), plus
// micro-benchmarks for the engine's hot paths. Experiment benchmarks
// report their headline numbers via b.ReportMetric so `go test -bench`
// output records the reproduced results alongside the timings.

import (
	"fmt"
	"strings"
	"testing"

	"ldl"
	"ldl/internal/experiments"
	"ldl/internal/workload"
)

func reportTable(b *testing.B, t *experiments.Table) {
	b.Helper()
	for name, v := range t.Metrics {
		b.ReportMetric(v, name)
	}
}

// BenchmarkE1KBZQuality — §7.1/[Vil 87]: KBZ vs exhaustive on random
// queries and catalog states.
func BenchmarkE1KBZQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E1KBZQuality(20, int64(i+1))
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkE2AnnealQuality — §7.1: simulated annealing quality vs probe
// budget.
func BenchmarkE2AnnealQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E2AnnealQuality(10, int64(i+1))
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkE3StrategyScaling — §7.2: per-strategy optimize-time scaling.
func BenchmarkE3StrategyScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E3StrategyScaling()
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkE4QuerySpecific — §2: query-form-specific compilation.
func BenchmarkE4QuerySpecific(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E4QuerySpecific()
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkE5RecursiveMethods — §7.3: naive/seminaive/magic/counting.
func BenchmarkE5RecursiveMethods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E5RecursiveMethods()
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkE6Adornments — §7.3: c-permutation enumeration for sg.
func BenchmarkE6Adornments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E6Adornments()
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkE7Safety — §8: compile-time safety verdicts.
func BenchmarkE7Safety(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E7Safety()
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkE8MatPipe — §5 MP: materialize/pipeline crossover.
func BenchmarkE8MatPipe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E8MatPipe()
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkE9PushSelect — §7.2: pushing selections through layers.
func BenchmarkE9PushSelect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E9PushSelect()
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkE10Memoization — Fig 7-1: binding-indexed memoization.
func BenchmarkE10Memoization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E10Memoization()
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkE11BottomLine — total wall time (optimize + execute) vs
// unoptimized evaluation: the deal the paper's architecture offers.
func BenchmarkE11BottomLine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.E11BottomLine()
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkA1MagicOverheadAblation — cost-constant ablation: the
// recursive-method decision must flip when bookkeeping dominates.
func BenchmarkA1MagicOverheadAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.A1MagicOverhead()
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkA2MemoAblation — optimizer speedup from Figure 7-1's memo.
func BenchmarkA2MemoAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.A2MemoAblation()
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// BenchmarkA3AccessPathAblation — EL method mix vs probe price.
func BenchmarkA3AccessPathAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.A3AccessPathCosts()
		if i == 0 {
			reportTable(b, t)
		}
	}
}

// ---- micro-benchmarks: engine and optimizer hot paths ---------------

// BenchmarkOptimizeSG measures one full optimization of the bound sg
// query form per strategy.
func BenchmarkOptimizeSG(b *testing.B) {
	src := workload.SameGen(workload.SameGenSpec{Depth: 6, Fanout: 2})
	sys, err := ldl.Load(src)
	if err != nil {
		b.Fatal(err)
	}
	goal := fmt.Sprintf("sg(%s, Y)", workload.SameGenLeaf(workload.SameGenSpec{Depth: 6, Fanout: 2}, 0))
	for _, st := range []ldl.Strategy{ldl.StrategyExhaustive, ldl.StrategyDP, ldl.StrategyKBZ, ldl.StrategyAnneal} {
		b.Run(string(st), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := sys.Optimize(goal, ldl.WithStrategy(st), ldl.WithSeed(int64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				if !p.Safe() {
					b.Fatal(p.Reason())
				}
			}
		})
	}
}

// BenchmarkExecuteSGBound measures optimized end-to-end execution of
// the bound sg query.
func BenchmarkExecuteSGBound(b *testing.B) {
	spec := workload.SameGenSpec{Depth: 8, Fanout: 2}
	sys, err := ldl.Load(workload.SameGen(spec))
	if err != nil {
		b.Fatal(err)
	}
	goal := fmt.Sprintf("sg(%s, Y)", workload.SameGenLeaf(spec, 0))
	p, err := sys.Optimize(goal)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Execute(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSemiNaiveTC measures the plain semi-naive engine on
// transitive closure.
func BenchmarkSemiNaiveTC(b *testing.B) {
	for _, n := range []int{50, 100} {
		b.Run(fmt.Sprintf("chain%d", n), func(b *testing.B) {
			sys, err := ldl.Load(workload.TCChain(n))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sys.EvaluateUnoptimized("tc(X, Y)"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSemiNaiveTCParallel measures the parallel stratified
// fixpoint on the same transitive-closure workloads for worker counts
// 1 (sequential reference), 2 and 4 — the single- vs multi-core
// speedup record for BENCH_PR2.json.
func BenchmarkSemiNaiveTCParallel(b *testing.B) {
	for _, n := range []int{100, 200} {
		sys, err := ldl.Load(workload.TCChain(n))
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("chain%d/workers%d", n, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := sys.EvaluateUnoptimized("tc(X, Y)", ldl.WithParallel(workers)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// complexTermsChain generates the structured-term benchmark workload:
// a chain of n edges whose transitive paths are materialized as
// cons-lists, so every derived tuple constructs a compound head term
// and every recursive probe decomposes one. This is the workload the
// build-template/column-pattern kernel steps exist for.
func complexTermsChain(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "e(n%d, n%d).\n", i, i+1)
	}
	b.WriteString("path(X, Y, cons(X, cons(Y, nil))) <- e(X, Y).\n")
	b.WriteString("path(X, Z, cons(X, P)) <- e(X, Y), path(Y, Z, P).\n")
	return b.String()
}

// BenchmarkFixpointKernels is the acceptance suite for the compiled
// positional join kernels: the same fixpoint workloads run through the
// generic substitution-based interpreter (WithCompiledKernels(false)),
// the tuple-at-a-time register-frame kernels (batch size 1 — the PR3
// executor, kept under the name "compiled" so the BENCH_PR3.json
// baselines stay comparable), and the vectorized block-at-a-time
// executor (default). The headline numbers — allocs/op on transitive
// closure, wall-clock on same-generation and on structured-term path
// construction — are recorded in BENCH_PR7.json.
func BenchmarkFixpointKernels(b *testing.B) {
	sgSpec := workload.SameGenSpec{Depth: 8, Fanout: 2}
	workloads := []struct {
		name string
		src  string
		goal string
	}{
		{"tc/chain100", workload.TCChain(100), "tc(X, Y)"},
		{"samegen/d8f2", workload.SameGen(sgSpec), "sg(X, Y)"},
		{"complexterms/chain40", complexTermsChain(40), "path(X, Y, P)"},
	}
	modes := []struct {
		name string
		opts []ldl.Option
	}{
		{"generic", []ldl.Option{ldl.WithCompiledKernels(false)}},
		{"compiled", []ldl.Option{ldl.WithBatchSize(1)}},
		{"batched", nil},
	}
	for _, w := range workloads {
		sys, err := ldl.Load(w.src)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range modes {
			b.Run(w.name+"/"+m.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := sys.EvaluateUnoptimized(w.goal, m.opts...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkParallelStrata measures clique-level parallelism: k
// independent transitive closures (disjoint strata in the follows
// order) that the parallel scheduler can run concurrently, joined by a
// top predicate so a single query reaches them all. A linear chain TC
// has one semi-naive variant per round, so this — not chain TC — is
// where the scheduler's concurrency shows.
func BenchmarkParallelStrata(b *testing.B) {
	const k, n = 4, 80
	var src strings.Builder
	for c := 0; c < k; c++ {
		for i := 1; i <= n; i++ {
			fmt.Fprintf(&src, "e%d(%d, %d).\n", c, i, i+1)
		}
		fmt.Fprintf(&src, "tc%d(X, Y) <- e%d(X, Y).\n", c, c)
		fmt.Fprintf(&src, "tc%d(X, Y) <- e%d(X, Z), tc%d(Z, Y).\n", c, c, c)
		fmt.Fprintf(&src, "reach(X) <- tc%d(1, X).\n", c)
	}
	sys, err := ldl.Load(src.String())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sys.EvaluateUnoptimized("reach(X)", ldl.WithParallel(workers)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParse measures parser throughput on a generated program.
func BenchmarkParse(b *testing.B) {
	src := workload.SameGen(workload.SameGenSpec{Depth: 8, Fanout: 2})
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := ldl.Load(src); err != nil {
			b.Fatal(err)
		}
	}
}

// tcGrove produces a transitive-closure program over `chains` disjoint
// chains of n edges each: chains*n base facts whose fixpoint holds
// chains*n*(n+1)/2 tc tuples. Disjoint components keep the fixpoint
// big while a handful of inserted edges touches almost none of it —
// the shape incremental maintenance exists for.
func tcGrove(chains, n int) string {
	var b strings.Builder
	b.WriteString("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n")
	for c := 0; c < chains; c++ {
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "e(c%dn%d, c%dn%d).\n", c, i, c, i+1)
		}
	}
	return b.String()
}

// BenchmarkIncrementalInsert is the acceptance benchmark for
// cross-epoch incremental view maintenance (BENCH_PR8.json): a
// 100,000-edge transitive-closure base (5000 disjoint chains × 20
// edges, ≈1.05M derived tc tuples), then per iteration one
// InsertFacts batch of 10 fresh edges followed by a bound re-query
// served from the views. The incremental arm seeds the next fixpoint
// with exactly the delta; the scratch arm (WithMaterializedScratch)
// recomputes the full fixpoint every epoch — the before/after pair
// the ≥5x floor is measured over.
func BenchmarkIncrementalInsert(b *testing.B) {
	const chains, n = 5000, 20
	src := tcGrove(chains, n)
	for _, mode := range []struct {
		name string
		opt  ldl.SystemOption
	}{
		{"incremental", ldl.WithMaterialized()},
		{"scratch", ldl.WithMaterializedScratch()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sys, err := ldl.Load(src, mode.opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			next := 1_000_000
			for i := 0; i < b.N; i++ {
				var batch strings.Builder
				for j := 0; j < 5; j++ {
					fmt.Fprintf(&batch, "e(x%d, x%d).\ne(x%d, x%d).\n", next, next+1, next+1, next+2)
					next += 3
				}
				if _, _, err := sys.InsertFacts(batch.String()); err != nil {
					b.Fatal(err)
				}
				rows, ok, err := sys.AnswersFromViews("tc(c0n0, Y)")
				if err != nil || !ok {
					b.Fatalf("view query failed: ok=%v err=%v", ok, err)
				}
				if len(rows) != n {
					b.Fatalf("bound re-query returned %d rows, want %d", len(rows), n)
				}
			}
			if st := sys.IVMStats(); !st.Scratch && st.ScratchFallbacks != 0 {
				b.Fatalf("incremental arm fell back to scratch %d times", st.ScratchFallbacks)
			}
		})
	}
}
