package ldl

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const sgSource = `
% same-generation knowledge base
up(a, p1). up(b, p1). up(p1, g1). up(c, p2). up(p2, g1).
dn(g1, q1). dn(q1, d). dn(q1, e).
flat(g1, g1).
sg(X, Y) <- flat(X, Y).
sg(X, Y) <- up(X, X1), sg(X1, Y1), dn(Y1, Y).
sg(a, Y)?
`

func TestLoadAndIntrospect(t *testing.T) {
	sys, err := Load(sgSource)
	if err != nil {
		t.Fatal(err)
	}
	if qs := sys.Queries(); len(qs) != 1 || qs[0] != "sg(a, Y)" {
		t.Errorf("Queries = %v", qs)
	}
	rels := sys.Relations()
	if len(rels) != 3 || !strings.Contains(rels[2], "up/2 (5 tuples)") {
		t.Errorf("Relations = %v", rels)
	}
	if _, err := Load(`p(`); err == nil {
		t.Error("bad source loaded")
	}
	if _, err := Load(`p(X).`); err == nil {
		t.Error("non-ground fact loaded")
	}
}

func TestQueryAllStrategies(t *testing.T) {
	sys, err := Load(sgSource)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]string
	for _, st := range []Strategy{StrategyExhaustive, StrategyDP, StrategyKBZ, StrategyAnneal} {
		rows, err := sys.Query("sg(a, Y)", WithStrategy(st), WithSeed(3))
		if err != nil {
			t.Fatalf("%s: %v", st, err)
		}
		if want == nil {
			want = rows
			if len(rows) == 0 {
				t.Fatal("no answers")
			}
			continue
		}
		if len(rows) != len(want) {
			t.Errorf("%s: %d rows, want %d", st, len(rows), len(want))
		}
	}
	if _, err := sys.Query("sg(a, Y)", WithStrategy("bogus")); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := sys.Query("sg(a Y)"); err == nil {
		t.Error("bad goal accepted")
	}
}

func TestExplainShowsProcessingTree(t *testing.T) {
	sys, err := Load(sgSource)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.Optimize("sg(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Safe() || p.Cost() <= 0 {
		t.Fatalf("plan: safe=%v cost=%v reason=%s", p.Safe(), p.Cost(), p.Reason())
	}
	ex := p.Explain()
	for _, wantPart := range []string{"query: sg(a, Y)?", "CC sg/2", "estimated cost"} {
		if !strings.Contains(ex, wantPart) {
			t.Errorf("Explain missing %q:\n%s", wantPart, ex)
		}
	}
}

func TestUnsafeQuerySurfacesReason(t *testing.T) {
	sys, err := Load(`p(X, Y, Z) <- X = 3, Z = X + Y.`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.Optimize("p(X, Y, Z)")
	if err != nil {
		t.Fatal(err)
	}
	if p.Safe() || p.Reason() == "" {
		t.Fatalf("plan: safe=%v reason=%q", p.Safe(), p.Reason())
	}
	if !strings.Contains(p.Explain(), "UNSAFE") {
		t.Errorf("Explain = %q", p.Explain())
	}
	if _, err := p.Execute(); err == nil {
		t.Error("unsafe plan executed")
	}
	if _, err := sys.Query("p(X, Y, Z)"); err == nil {
		t.Error("unsafe query ran")
	}
}

func TestOptimizedBeatsUnoptimizedOnBoundQuery(t *testing.T) {
	sys, err := Load(sgSource)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.Optimize("sg(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	optRows, optStats, err := p.ExecuteStats()
	if err != nil {
		t.Fatal(err)
	}
	refRows, refStats, err := sys.EvaluateUnoptimized("sg(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(optRows) != len(refRows) {
		t.Fatalf("row mismatch: %v vs %v", optRows, refRows)
	}
	for i := range optRows {
		if strings.Join(optRows[i], ",") != strings.Join(refRows[i], ",") {
			t.Fatalf("row %d: %v vs %v", i, optRows[i], refRows[i])
		}
	}
	if optStats.TuplesDerived >= refStats.TuplesDerived {
		t.Errorf("optimized derived %d tuples, unoptimized %d",
			optStats.TuplesDerived, refStats.TuplesDerived)
	}
}

func TestSetStatsInfluencesPlan(t *testing.T) {
	src := `
a(1, 1).
b(1, 1).
q(X, Z) <- a(X, Y), b(Y, Z).
`
	sys, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	// Tell the optimizer b is huge and a tiny: the plan must start with a.
	sys.SetStats("a/2", 10, []float64{10, 10})
	sys.SetStats("b/2", 100000, []float64{100, 100})
	p, err := sys.Optimize("q(X, Z)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Explain(), "join") {
		t.Fatalf("Explain:\n%s", p.Explain())
	}
	idxA := strings.Index(p.Explain(), "scan a(")
	idxB := strings.Index(p.Explain(), "scan b(")
	if idxA < 0 || idxB < 0 || idxA > idxB {
		t.Errorf("a not scanned first:\n%s", p.Explain())
	}
	// Flip the statistics: the plan must flip too.
	sys.SetStats("b/2", 10, []float64{10, 10})
	sys.SetStats("a/2", 100000, []float64{100, 100})
	p2, err := sys.Optimize("q(X, Z)")
	if err != nil {
		t.Fatal(err)
	}
	idxA2 := strings.Index(p2.Explain(), "scan a(")
	idxB2 := strings.Index(p2.Explain(), "scan b(")
	if idxB2 < 0 || idxA2 < 0 || idxB2 > idxA2 {
		t.Errorf("b not scanned first after stats flip:\n%s", p2.Explain())
	}
}

func TestMemoCountersExposed(t *testing.T) {
	src := `
e(1, 2).
sub(X, Y) <- e(X, Y).
p(X, Z) <- sub(X, Y), sub(Y, Z).
`
	sys, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.Optimize("p(1, Z)")
	if err != nil {
		t.Fatal(err)
	}
	if p.MemoLookups == 0 {
		t.Error("no memo lookups recorded")
	}
}

func TestWithFlatteningRescuesSection83(t *testing.T) {
	sys, err := Load(`
p(X, Y, Z) <- X = 3, Z = X + Y.
q(X, Y, Z) <- p(X, Y, Z), Y = 2 ^ X.
`)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.Optimize("q(X, Y, Z)")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Safe() {
		t.Fatal("§8.3 query safe without flattening")
	}
	flat, err := sys.Optimize("q(X, Y, Z)", WithFlattening())
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Safe() {
		t.Fatalf("flattened query unsafe: %s", flat.Reason())
	}
	rows, err := flat.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || strings.Join(rows[0], ",") != "3,8,11" {
		t.Errorf("rows = %v", rows)
	}
}

func TestNegationThroughOptimizer(t *testing.T) {
	src := `
node(1). node(2). node(3). node(4).
e(1, 2). e(2, 3).
reach(1).
reach(Y) <- reach(X), e(X, Y).
unreach(X) <- node(X), not reach(X).
`
	sys, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sys.Query("unreach(X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "4" {
		t.Errorf("unreach = %v", rows)
	}
}

func TestCyclicDataDisablesCounting(t *testing.T) {
	// Regression: a bound recursive query over cyclic data must not
	// choose the counting method (whose level counter diverges on
	// cycles) — the acyclicity statistic gates it. The query must still
	// optimize to a binding method (magic) and terminate.
	src := `
e(a, b). e(b, c). e(c, a). e(c, d).
reach(X, Y) <- e(X, Y).
reach(X, Y) <- e(X, Z), reach(Z, Y).
`
	sys, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.Optimize("reach(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Safe() {
		t.Fatalf("cyclic reach unsafe: %s", p.Reason())
	}
	if strings.Contains(p.Explain(), "method=counting") {
		t.Fatalf("counting chosen over cyclic data:\n%s", p.Explain())
	}
	rows, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // a reaches a, b, c, d
		t.Errorf("rows = %v", rows)
	}
}

// TestSharedSubexpressionComputedOnce demonstrates the common-
// subexpression behavior §9 discusses: two occurrences of the same
// subquery under the same binding compile to ONE adorned predicate
// whose relation the engine computes once — sharing emerges from the
// adorned-name scheme plus the optimizer's binding-indexed memo.
func TestSharedSubexpressionComputedOnce(t *testing.T) {
	shared := `
e(1, 2). e(2, 3). e(3, 4).
sub(X, Y) <- e(X, Y).
sub(X, Y) <- e(Y, X).
pair(X, Y) <- sub(1, X), sub(1, Y), X < Y.
`
	// Control: structurally identical, but the second occurrence names
	// a distinct (duplicate) predicate, forcing genuine recomputation.
	duplicated := `
e(1, 2). e(2, 3). e(3, 4).
sub(X, Y) <- e(X, Y).
sub(X, Y) <- e(Y, X).
sub2(X, Y) <- e(X, Y).
sub2(X, Y) <- e(Y, X).
pair(X, Y) <- sub(1, X), sub2(1, Y), X < Y.
`
	work := func(src string) (int, [][]string) {
		sys, err := Load(src)
		if err != nil {
			t.Fatal(err)
		}
		p, err := sys.Optimize("pair(A, B)")
		if err != nil {
			t.Fatal(err)
		}
		if p.MemoLookups == 0 {
			t.Fatal("no memo activity")
		}
		if !p.Safe() {
			t.Fatal(p.Reason())
		}
		rows, stats, err := p.ExecuteStats()
		if err != nil {
			t.Fatal(err)
		}
		return stats.TuplesDerived, rows
	}
	sharedWork, sharedRows := work(shared)
	dupWork, dupRows := work(duplicated)
	if len(sharedRows) != len(dupRows) {
		t.Fatalf("answer mismatch: %d vs %d", len(sharedRows), len(dupRows))
	}
	if sharedWork >= dupWork {
		t.Errorf("shared subexpression derived %d tuples, duplicated %d — no sharing benefit",
			sharedWork, dupWork)
	}
}

// TestQuickFullPipelineRandomGraphs drives the entire public pipeline
// (load, optimize with every strategy, compile, execute) on random
// graphs — cyclic ones included — with random query forms, checking the
// answers against unoptimized evaluation every time.
func TestQuickFullPipelineRandomGraphs(t *testing.T) {
	strategies := []Strategy{StrategyExhaustive, StrategyDP, StrategyKBZ, StrategyAnneal}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6)
		var b strings.Builder
		for i := 0; i < 2*n; i++ {
			fmt.Fprintf(&b, "e(%d, %d).\n", r.Intn(n), r.Intn(n))
		}
		b.WriteString("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n")
		b.WriteString("two(X, Y) <- e(X, Z), e(Z, Y).\n")
		b.WriteString("top(X, Y) <- two(X, Z), tc(Z, Y).\n")
		sys, err := Load(b.String())
		if err != nil {
			return false
		}
		goal := "top(X, Y)"
		if r.Intn(2) == 0 {
			goal = fmt.Sprintf("top(%d, Y)", r.Intn(n))
		}
		want, _, err := sys.EvaluateUnoptimized(goal)
		if err != nil {
			return false
		}
		st := strategies[r.Intn(len(strategies))]
		got, err := sys.Query(goal, WithStrategy(st), WithSeed(seed))
		if err != nil {
			t.Logf("seed %d strategy %s: %v", seed, st, err)
			return false
		}
		if len(got) != len(want) {
			t.Logf("seed %d strategy %s: %d rows vs %d", seed, st, len(got), len(want))
			return false
		}
		for i := range got {
			if strings.Join(got[i], ",") != strings.Join(want[i], ",") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateTopDownAgreesAndDescends(t *testing.T) {
	sys, err := Load(sgSource)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := sys.EvaluateUnoptimized("sg(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	got, tdStats, err := sys.EvaluateTopDown("sg(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows: %v vs %v", got, want)
	}
	if tdStats.TuplesDerived == 0 {
		t.Error("no top-down work recorded")
	}
	// Bound list-length works top-down even though bottom-up cannot
	// evaluate the clique.
	sys2, err := Load(`
len(nil, 0).
len(c(H, T), N) <- len(T, M), N = M + 1.
`)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := sys2.EvaluateTopDown("len(c(a, c(b, nil)), N)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1] != "2" {
		t.Errorf("len rows = %v", rows)
	}
	if _, _, err := sys2.EvaluateTopDown("len("); err == nil {
		t.Error("bad goal accepted")
	}
}

func TestComplexTermQuery(t *testing.T) {
	src := `
owns(john, car(ford, 1988)).
owns(mary, car(fiat, 1990)).
owns(mary, bike(atala)).
vintage(P, M) <- owns(P, car(M, Y)), Y < 1990.
`
	sys, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sys.Query("vintage(P, M)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "john" || rows[0][1] != "ford" {
		t.Errorf("rows = %v", rows)
	}
}
