package ldl

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldl/internal/parser"
	"ldl/internal/term"
	"ldl/internal/wal"
)

func renderAns(rows [][]string) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// genInsertSchedule builds a deterministic random multi-batch insert
// schedule for a program: each batch recombines column values of
// existing rows of the base relations (so the new facts are type-
// consistent with what the rules expect) and sprinkles in exact
// duplicates (no-op inserts, exercising the empty-delta path).
func genInsertSchedule(t *testing.T, src string, batches int, seed int64) []string {
	t.Helper()
	sys, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	db := sys.snapshot().db
	tags := db.Tags()
	out := make([]string, 0, batches)
	for b := 0; b < batches; b++ {
		var sb strings.Builder
		for _, tag := range tags {
			r := db.Relation(tag)
			// Skip normalization-internal relations ($-renamed fact halves)
			// and anything empty.
			if r.Len() == 0 || strings.Contains(tag, "$") || rng.Intn(2) == 0 {
				continue
			}
			name := tag[:strings.LastIndexByte(tag, '/')]
			for k := 0; k < 1+rng.Intn(3); k++ {
				args := make([]string, r.Arity)
				if rng.Intn(4) == 0 {
					// Exact duplicate of an existing row.
					row := r.TupleAt(rng.Intn(r.Len()))
					for c, v := range row {
						args[c] = v.String()
					}
				} else {
					// Recombine: each column value sampled from that column
					// of a random existing row.
					for c := 0; c < r.Arity; c++ {
						args[c] = r.TupleAt(rng.Intn(r.Len()))[c].String()
					}
				}
				fact := fmt.Sprintf("%s(%s).\n", name, strings.Join(args, ", "))
				// Keep only facts whose rendering parses back — operator-
				// shaped terms do not round-trip through source text.
				if _, _, err := parser.ParseProgram(fact); err != nil {
					continue
				}
				sb.WriteString(fact)
			}
		}
		out = append(out, sb.String())
	}
	return out
}

// TestIncrementalEquivalenceCorpus is the tentpole acceptance suite:
// every corpus program runs a random multi-batch insert schedule
// through a materialized System in all four maintenance modes
// (generic/batched × seq/par), and after every batch the view answers
// must be byte-identical to a scratch recomputation over the
// accumulated facts. Programs with negation take the per-stratum
// fallback path here and must come out identical too.
func TestIncrementalEquivalenceCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.ldl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files found")
	}
	modes := []struct {
		name string
		opts []Option
	}{
		{"generic/seq", []Option{WithCompiledKernels(false)}},
		{"batched/seq", nil},
		{"generic/par", []Option{WithCompiledKernels(false), WithParallel(4)}},
		{"batched/par", []Option{WithParallel(4)}},
	}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".ldl")
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			src := string(raw)
			schedule := genInsertSchedule(t, src, 3, int64(len(src)))
			for _, m := range modes {
				inc, err := Load(src, WithMaterialized(m.opts...))
				if err != nil {
					t.Fatal(err)
				}
				accum := src
				for bi, batch := range schedule {
					if strings.TrimSpace(batch) != "" {
						if _, _, err := inc.InsertFacts(batch); err != nil {
							t.Fatalf("%s batch %d: %v", m.name, bi, err)
						}
						accum += "\n" + batch
					}
					scratch, err := Load(accum)
					if err != nil {
						t.Fatalf("%s batch %d: scratch load: %v", m.name, bi, err)
					}
					for _, goal := range inc.Queries() {
						rows, ok, err := inc.AnswersFromViews(goal)
						if err != nil || !ok {
							t.Fatalf("%s batch %d %s: views unavailable (ok=%v err=%v)", m.name, bi, goal, ok, err)
						}
						want, _, err := scratch.EvaluateUnoptimized(goal)
						if err != nil {
							t.Fatalf("%s batch %d %s: scratch: %v", m.name, bi, goal, err)
						}
						if got, ref := renderAns(rows), renderAns(want); got != ref {
							t.Errorf("%s batch %d %s: incremental diverges from scratch\n got:\n%s\nwant:\n%s",
								m.name, bi, goal, got, ref)
						}
					}
				}
			}
		})
	}
}

// TestIncrementalVsScratchMaintenance cross-checks the two maintenance
// modes directly: the same insert schedule through WithMaterialized and
// WithMaterializedScratch must produce byte-identical views, while
// their IVM telemetry shows they took different paths.
func TestIncrementalVsScratchMaintenance(t *testing.T) {
	src := `
e(1, 2). e(2, 3). e(3, 4).
tc(X, Y) <- e(X, Y).
tc(X, Y) <- e(X, Z), tc(Z, Y).
tc(X, Y)?
`
	inc, err := Load(src, WithMaterialized())
	if err != nil {
		t.Fatal(err)
	}
	scr, err := Load(src, WithMaterializedScratch())
	if err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 9; i++ {
		batch := fmt.Sprintf("e(%d, %d).", i, i+1)
		if _, _, err := inc.InsertFacts(batch); err != nil {
			t.Fatal(err)
		}
		if _, _, err := scr.InsertFacts(batch); err != nil {
			t.Fatal(err)
		}
		a, ok, err := inc.AnswersFromViews("tc(X, Y)")
		if err != nil || !ok {
			t.Fatalf("incremental views: ok=%v err=%v", ok, err)
		}
		b, ok, err := scr.AnswersFromViews("tc(X, Y)")
		if err != nil || !ok {
			t.Fatalf("scratch views: ok=%v err=%v", ok, err)
		}
		if renderAns(a) != renderAns(b) {
			t.Fatalf("views diverge after batch %d:\n%s\nvs\n%s", i, renderAns(a), renderAns(b))
		}
	}
	ist, sst := inc.IVMStats(), scr.IVMStats()
	if ist.ScratchFallbacks != 0 {
		t.Errorf("incremental mode took %d scratch fallbacks on a monotone program, want 0", ist.ScratchFallbacks)
	}
	if ist.IncrementalRounds == 0 {
		t.Error("incremental mode reports no incremental rounds")
	}
	if sst.ScratchFallbacks == 0 {
		t.Error("scratch mode reports no scratch recomputes")
	}
	if ist.LastDeltaRows == 0 {
		t.Error("incremental mode reports no per-epoch delta size")
	}
	if ist.Epochs != 5 || sst.Epochs != 5 { // boot + 4 batches
		t.Errorf("epochs: inc %d scr %d, want 5", ist.Epochs, sst.Epochs)
	}
}

// TestIncrementalNegationFallbackSystem pins the fallback rule at the
// System level: a program whose negation reads a changing stratum must
// recompute that stratum (ScratchFallbacks advances) and must never
// serve the stale answer.
func TestIncrementalNegationFallbackSystem(t *testing.T) {
	src := `
node(1). node(2). node(3).
e(1, 2).
tc(X, Y) <- e(X, Y).
tc(X, Y) <- e(X, Z), tc(Z, Y).
unreach(X, Y) <- node(X), node(Y), not tc(X, Y).
`
	sys, err := Load(src, WithMaterialized())
	if err != nil {
		t.Fatal(err)
	}
	rows, ok, err := sys.AnswersFromViews("unreach(1, 3)")
	if err != nil || !ok {
		t.Fatalf("views: ok=%v err=%v", ok, err)
	}
	if len(rows) != 1 {
		t.Fatalf("before insert: unreach(1,3) = %v, want one row", rows)
	}
	if _, _, err := sys.InsertFacts("e(2, 3)."); err != nil {
		t.Fatal(err)
	}
	rows, ok, err = sys.AnswersFromViews("unreach(1, 3)")
	if err != nil || !ok {
		t.Fatalf("views after insert: ok=%v err=%v", ok, err)
	}
	if len(rows) != 0 {
		t.Fatalf("stale view: unreach(1,3) = %v after e(2,3) made 3 reachable", rows)
	}
	if st := sys.IVMStats(); st.ScratchFallbacks == 0 {
		t.Errorf("stats: %+v, want the negation stratum counted as a scratch fallback", st)
	}
}

// TestIncrementalFollowerMaintainsViews drives the replication path:
// a follower applying shipped batches maintains its views through the
// same incremental machinery, epoch for epoch.
func TestIncrementalFollowerMaintainsViews(t *testing.T) {
	src := `
e(1, 2).
tc(X, Y) <- e(X, Y).
tc(X, Y) <- e(X, Z), tc(Z, Y).
`
	follower, err := Load(src, WithMaterialized())
	if err != nil {
		t.Fatal(err)
	}
	follower.SetReadOnly("leader:1234")
	batch := wal.Batch{Epoch: 2, Rels: []wal.RelFacts{{
		Tag: "e/2", Arity: 2,
		Tuples: [][]term.Term{{term.Int(2), term.Int(3)}, {term.Int(3), term.Int(4)}},
	}}}
	if err := follower.ApplyReplicated(batch); err != nil {
		t.Fatal(err)
	}
	rows, ok, err := follower.AnswersFromViews("tc(1, Y)")
	if err != nil || !ok {
		t.Fatalf("follower views: ok=%v err=%v", ok, err)
	}
	if len(rows) != 3 {
		t.Fatalf("follower tc(1,Y) = %v, want 3 rows", rows)
	}
	if st := follower.IVMStats(); st.Epochs != 2 || st.ScratchFallbacks != 0 {
		t.Errorf("follower stats: %+v, want 2 epochs maintained incrementally", st)
	}
}

// TestIncrementalSurvivesRecovery checks the WAL interaction: recovery
// rebuilds the views from the recovered fact base in one scratch pass,
// after which maintenance is incremental again.
func TestIncrementalSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	src := `
e(1, 2).
tc(X, Y) <- e(X, Y).
tc(X, Y) <- e(X, Z), tc(Z, Y).
`
	sys, err := Load(src, WithDurability(dir), WithMaterialized())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.InsertFacts("e(2, 3)."); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := Load(src, WithDurability(dir), WithMaterialized())
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	rows, ok, err := sys2.AnswersFromViews("tc(1, Y)")
	if err != nil || !ok {
		t.Fatalf("recovered views: ok=%v err=%v", ok, err)
	}
	if len(rows) != 2 {
		t.Fatalf("recovered tc(1,Y) = %v, want 2 rows", rows)
	}
	if _, _, err := sys2.InsertFacts("e(3, 4)."); err != nil {
		t.Fatal(err)
	}
	rows, _, err = sys2.AnswersFromViews("tc(1, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("post-recovery incremental tc(1,Y) = %v, want 3 rows", rows)
	}
	if st := sys2.IVMStats(); st.IncrementalRounds == 0 {
		t.Errorf("stats after recovery: %+v, want incremental maintenance resumed", st)
	}
}

// TestViewAnswersMatchQueryPath pins view serving to the optimized
// query path: for bound, partially bound and free goals the rendered
// answers must be identical to Plan.Execute's.
func TestViewAnswersMatchQueryPath(t *testing.T) {
	src := `
flat(1, 2). up(2, 3). dn(3, 4). flat(3, 3). up(1, 2). dn(2, 1).
sg(X, Y) <- flat(X, Y).
sg(X, Y) <- up(X, Z), sg(Z, W), dn(W, Y).
`
	sys, err := Load(src, WithMaterialized())
	if err != nil {
		t.Fatal(err)
	}
	for _, goal := range []string{"sg(1, Y)", "sg(X, Y)", "sg(X, X)", "sg(1, 4)", "sg(9, Y)"} {
		fromViews, ok, err := sys.AnswersFromViews(goal)
		if err != nil || !ok {
			t.Fatalf("%s: views: ok=%v err=%v", goal, ok, err)
		}
		want, err := sys.Query(goal)
		if err != nil {
			t.Fatalf("%s: query: %v", goal, err)
		}
		if renderAns(fromViews) != renderAns(want) {
			t.Errorf("%s: views %q != query %q", goal, renderAns(fromViews), renderAns(want))
		}
	}
}
