package ldl

// Materialized derived relations, maintained incrementally across
// epochs.
//
// A System opened with WithMaterialized keeps the full extensions of
// every derived predicate of the loaded program alongside each epoch.
// The views are part of the epoch: computed before the epoch publishes,
// immutable afterwards, so a reader that loads the snapshot gets facts
// and views from the same consistent version — publish stays atomic.
//
// Maintenance is the point. InsertFacts does not recompute the views
// from an empty fixpoint; it resumes the previous epoch's fixpoint with
// exactly the appended base rows as the seed delta (eval.RunIncremental),
// so an append of 10 tuples to a million-fact base costs work
// proportional to the 10 tuples' consequences. The insert-only epoch
// discipline makes this sound for the monotone fragment; strata that
// read a changed relation through negation are recomputed from scratch
// per-stratum (detected via the dependency graph), so answers are never
// silently stale. WithMaterializedScratch maintains the same views by
// full recomputation on every epoch — the A/B baseline the incremental
// path is benchmarked and equivalence-tested against.
//
// Watermarks: because relations only ever append, the state of a base
// relation at materialization time is just its row count. The epoch's
// matState records those counts; the next maintenance turns them into
// seed deltas with store.DeltaSince. Failure degrades instead of
// wedging writes: a maintenance error drops the views for that epoch
// (queries fall back to computing answers) and the next successful
// insert rebuilds them from scratch — counted in ivm_scratch_fallbacks.

import (
	"fmt"
	"sync/atomic"

	"ldl/internal/depgraph"
	"ldl/internal/eval"
	"ldl/internal/parser"
	"ldl/internal/store"
	"ldl/internal/term"
)

// matConfig is the Load-time materialization configuration.
type matConfig struct {
	enabled bool
	scratch bool    // recompute every epoch instead of continuing (A/B baseline)
	o       options // evaluation knobs for maintenance (parallel, kernels, batch)
}

// matState is the materialized side of one epoch: the derived
// extensions and the base-relation watermarks (row counts) they were
// computed at. Immutable once the epoch publishes; unchanged relations
// are shared by pointer across epochs.
type matState struct {
	rels  map[string]*store.Relation // derived tag -> full extension
	marks map[string]int             // base tag -> row count at materialization
}

// ivmCounters is the System-lifetime maintenance telemetry behind
// IVMStats; all fields are updated atomically so STATS never takes the
// write lock.
type ivmCounters struct {
	epochs      atomic.Int64
	rounds      atomic.Int64
	scratchFB   atomic.Int64
	deltaRows   atomic.Int64
	lastDelta   atomic.Int64
	viewQueries atomic.Int64
}

// WithMaterialized makes the System maintain materialized views of
// every derived predicate, incrementally across epochs. opts configures
// the maintenance evaluation itself (WithParallel, WithCompiledKernels,
// WithBatchSize); answer-affecting options are ignored. Queries can
// then be served straight from the views with AnswersFromViews.
func WithMaterialized(opts ...Option) SystemOption {
	return func(c *sysConfig) {
		c.mat.enabled = true
		for _, f := range opts {
			f(&c.mat.o)
		}
	}
}

// WithMaterializedScratch maintains the same views as WithMaterialized
// but recomputes them from an empty fixpoint on every epoch — the
// scratch baseline the incremental path is measured against, and the
// reference arm of the equivalence tests. Production systems want
// WithMaterialized.
func WithMaterializedScratch(opts ...Option) SystemOption {
	return func(c *sysConfig) {
		c.mat.enabled = true
		c.mat.scratch = true
		for _, f := range opts {
			f(&c.mat.o)
		}
	}
}

// matSetup caches the analysis artifacts maintenance reuses every
// epoch: the dependency graph and the compiled program kernels. Called
// once from Load; a program that cannot be stratified cannot be
// materialized, so the error surfaces at Load.
func (s *System) matSetup() error {
	if !s.matCfg.enabled {
		return nil
	}
	g, err := depgraph.Analyze(s.prog)
	if err != nil {
		return fmt.Errorf("ldl: materialize: %w", err)
	}
	s.matGraph = g
	if !s.matCfg.o.noKernels {
		s.matKern = eval.CompileProgram(s.prog)
	}
	return nil
}

// matEngine builds a maintenance engine over the epoch's database. The
// default eval backstops (10M tuples, 1M rounds) bound a diverging
// program; the graph and kernels are the Load-time cached ones.
func (s *System) matEngine(ep *epochState) (*eval.Engine, error) {
	return eval.New(s.prog, ep.db, eval.Options{
		Method:         eval.SemiNaive,
		Parallel:       s.matCfg.o.parallel,
		SizeHints:      ep.hints,
		DisableKernels: s.matCfg.o.noKernels,
		BatchSize:      s.matCfg.o.batch,
		Graph:          s.matGraph,
		Kernels:        s.matKern,
	})
}

// buildMat computes the matState for an epoch. With a prior state (and
// incremental mode) it continues the prior fixpoint from the appended
// base suffixes; otherwise it runs from scratch. Returns the number of
// appended base rows that seeded the continuation (0 for scratch).
func (s *System) buildMat(ep *epochState, prev *matState) (*matState, eval.IncrementalStats, int, error) {
	var st eval.IncrementalStats
	e, err := s.matEngine(ep)
	if err != nil {
		return nil, st, 0, err
	}
	base := 0
	if prev == nil || s.matCfg.scratch {
		if err := e.Run(); err != nil {
			return nil, st, 0, err
		}
	} else {
		deltas := baseDeltas(ep.db, prev.marks)
		for _, d := range deltas {
			base += d.Len()
		}
		if st, err = e.RunIncremental(prev.rels, deltas); err != nil {
			return nil, st, 0, err
		}
	}
	rels := make(map[string]*store.Relation)
	for _, tag := range e.DerivedTags() {
		// Freeze each view's tail into an immutable shared part: the
		// next epoch's maintenance clones these (CloneOwned) to continue
		// the fixpoint, and a frozen relation clones at O(appended
		// delta) instead of O(view) — the epoch cost the watermark
		// machinery promises. Relations untouched since the last freeze
		// return themselves, so steady-state epochs add no parts.
		rels[tag] = e.RelationFor(tag).Frozen()
	}
	marks := make(map[string]int)
	for _, tag := range ep.db.Tags() {
		marks[tag] = ep.db.Relation(tag).Len()
	}
	return &matState{rels: rels, marks: marks}, st, base, nil
}

// baseDeltas derives the seed deltas from the watermarks: for every
// base relation that grew past its recorded mark (or appeared since),
// the appended suffix.
func baseDeltas(db *store.Database, marks map[string]int) map[string]*store.Relation {
	out := map[string]*store.Relation{}
	for _, tag := range db.Tags() {
		r := db.Relation(tag)
		if from := marks[tag]; r.Len() > from {
			out[tag] = r.DeltaSince(from)
		}
	}
	return out
}

// materializeBoot computes the initial views for the first epoch.
// Called from Load (and recovery) before the epoch is stored; a failure
// here fails Load — a program whose full fixpoint cannot be computed
// cannot be served from views at all.
func (s *System) materializeBoot(ep *epochState) error {
	if !s.matCfg.enabled {
		return nil
	}
	mat, _, _, err := s.buildMat(ep, nil)
	if err != nil {
		return fmt.Errorf("ldl: materialize: %w", err)
	}
	ep.mat = mat
	s.ivm.epochs.Add(1)
	return nil
}

// maintainViews carries the views from the previous epoch onto next.
// Called with writeMu held, before next is chained as the head, so the
// views publish atomically with the facts. Never fails the write: a
// maintenance error drops the views for this epoch (degrade, counted as
// a scratch fallback) and the next insert rebuilds from scratch.
func (s *System) maintainViews(next, prev *epochState) {
	if !s.matCfg.enabled {
		return
	}
	var pm *matState
	if prev != nil {
		pm = prev.mat
	}
	mat, st, base, err := s.buildMat(next, pm)
	if err != nil {
		next.mat = nil
		s.ivm.scratchFB.Add(1)
		return
	}
	next.mat = mat
	s.ivm.epochs.Add(1)
	if pm == nil || s.matCfg.scratch {
		s.ivm.scratchFB.Add(1) // full recompute: scratch mode, or rebuild after a degrade
		return
	}
	s.ivm.rounds.Add(int64(st.Rounds))
	s.ivm.scratchFB.Add(int64(st.CliquesScratch))
	delta := int64(base + st.DeltaDerived)
	s.ivm.deltaRows.Add(delta)
	s.ivm.lastDelta.Store(delta)
}

// Materialized reports whether the System maintains materialized views.
func (s *System) Materialized() bool { return s.matCfg.enabled }

// AnswersFromViews serves a query form directly from the current
// epoch's materialized views: no optimization, no fixpoint — an index
// probe on the ground argument positions plus a unification filter,
// with answers in the same canonical order as Query/Execute. ok is
// false (with no error) when the query cannot be served from views:
// the System is not materialized, this epoch's views were dropped by a
// maintenance degrade, or the predicate is unknown.
func (s *System) AnswersFromViews(goal string) (rows [][]string, ok bool, err error) {
	defer guard(&err)
	lit, err := parser.ParseLiteral(goal)
	if err != nil {
		return nil, false, err
	}
	ep := s.snapshot()
	if ep.mat == nil {
		return nil, false, nil
	}
	rel := ep.mat.rels[lit.Tag()]
	if rel == nil {
		// Base predicates serve straight from the (immutable) store.
		rel = ep.db.Relation(lit.Tag())
	}
	if rel == nil {
		return nil, false, nil
	}
	var mask uint32
	probe := make(store.Tuple, len(lit.Args))
	for i, a := range lit.Args {
		if i < 32 && term.Ground(a) {
			mask |= 1 << uint(i)
			probe[i] = a
		}
	}
	out := store.NewRelation("ans", lit.Arity())
	for _, t := range rel.Lookup(mask, probe) {
		if _, ok := term.UnifyAll(lit.Args, []term.Term(t), term.NewSubst()); ok {
			out.MustInsert(t)
		}
	}
	s.ivm.viewQueries.Add(1)
	return renderRows(out.Sorted()), true, nil
}

// IVMStats is the incremental-view-maintenance telemetry STATS exposes:
// how many epochs were materialized, how much incremental work they
// took, and when the system fell off the incremental path.
type IVMStats struct {
	// Enabled reports whether the System materializes views at all; the
	// other fields are zero when it does not.
	Enabled bool
	// Scratch reports the WithMaterializedScratch baseline mode.
	Scratch bool
	// Epochs counts successfully materialized epochs (including boot).
	Epochs int64
	// IncrementalRounds counts in-clique fixpoint rounds run by epoch
	// continuations — the work metric of the incremental path.
	IncrementalRounds int64
	// ScratchFallbacks counts per-stratum scratch recomputations:
	// negation over a changed stratum, maintenance degrades, and (in
	// scratch mode) every maintenance pass.
	ScratchFallbacks int64
	// DeltaRows is the cumulative size of all epoch deltas (appended
	// base rows + newly derived rows); LastDeltaRows is the newest
	// epoch's.
	DeltaRows     int64
	LastDeltaRows int64
	// ViewQueries counts queries answered from the views.
	ViewQueries int64
}

// IVMStats reports the materialization counters.
func (s *System) IVMStats() IVMStats {
	return IVMStats{
		Enabled:           s.matCfg.enabled,
		Scratch:           s.matCfg.scratch,
		Epochs:            s.ivm.epochs.Load(),
		IncrementalRounds: s.ivm.rounds.Load(),
		ScratchFallbacks:  s.ivm.scratchFB.Load(),
		DeltaRows:         s.ivm.deltaRows.Load(),
		LastDeltaRows:     s.ivm.lastDelta.Load(),
		ViewQueries:       s.ivm.viewQueries.Load(),
	}
}
