package ldl

// Storage-tier tests: the segment/manifest glue in storage.go driven
// through the public API. The wal.MemFS fault injector is the
// filesystem, so the crash matrix covers segment flushes and manifest
// swaps the same way durable_test.go covers the log alone: every fault
// schedule must recover to a prefix of the acknowledged batches.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldl/internal/wal"
)

// withStorageFS opens a System on the storage tier over an injected
// filesystem, with the background checkpointer disabled so tests
// control every flush explicitly.
func withStorageFS(fs wal.FS) []SystemOption {
	return []SystemOption{WithStorageDir("data"), withWALFS(fs), WithCheckpointBytes(-1)}
}

func TestStorageRestartRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	sys, err := Load(durSrc, withStorageFS(fs)...)
	if err != nil {
		t.Fatal(err)
	}
	if rep := sys.Recovery(); rep == nil || rep.RecordsReplayed != 0 {
		t.Fatalf("fresh dir recovery = %+v", rep)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := sys.InsertFacts(durBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := sys.Query("anc(x0, Y)")
	if err != nil {
		t.Fatal(err)
	}
	// Explicit mid-life flush, then more inserts on top of the frozen
	// prefix, then the final flush at Close.
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := sys.StorageStats()
	if !st.Enabled || st.Segments == 0 || st.SegmentRows == 0 {
		t.Fatalf("after flush: %+v", st)
	}
	// The flushed state answers identically.
	got, err := sys.Query("anc(x0, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("answers changed across flush: %v != %v", got, want)
	}
	for i := 4; i < 6; i++ {
		if _, _, err := sys.InsertFacts(durBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	epoch := sys.Epoch()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: boot must come from the manifest, not a replay.
	sys2, err := Load(durSrc, withStorageFS(fs.Crash(true))...)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys2.Recovery()
	if rep == nil || rep.Epoch != epoch {
		t.Fatalf("recovery = %+v, want epoch %d", rep, epoch)
	}
	if rep.RecordsReplayed != 0 || rep.CheckpointTuples != 0 {
		t.Errorf("open-not-replay: boot after clean Close replayed %d records, loaded %d snapshot tuples (%+v)",
			rep.RecordsReplayed, rep.CheckpointTuples, rep)
	}
	checkPrefix(t, parTuples(sys2), 6, 6)
	got2, err := sys2.Query("anc(x0, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got2) != fmt.Sprint(want) {
		t.Fatalf("post-restart answers diverge: %v != %v", got2, want)
	}
	st2 := sys2.StorageStats()
	if st2.ManifestEpoch != epoch || st2.TailRows != 0 {
		t.Errorf("after reopen: %+v, want manifest at %d with empty tail", st2, epoch)
	}
	// The epoch sequence continues past everything acknowledged.
	if _, e, err := sys2.InsertFacts(durBatch(9)); err != nil || e <= epoch {
		t.Fatalf("post-restart insert: epoch %d err %v, want > %d", e, err, epoch)
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStorageCrashMatrix injects a fault at every filesystem operation
// of a fixed schedule that interleaves inserts with explicit
// checkpoints — so the faults land inside segment writes, manifest
// swaps, log rotations and retirements too — then crashes losing
// unsynced data, reboots, and requires recovery to a prefix covering
// every acknowledged batch. A failed checkpoint must never lose
// acknowledged data: the old manifest plus the unretired log remain
// the durable state.
func TestStorageCrashMatrix(t *testing.T) {
	const batches = 5
	run := func(fs *wal.MemFS) (acked int, sys *System) {
		sys, err := Load(durSrc, withStorageFS(fs)...)
		if err != nil {
			return 0, nil
		}
		for i := 0; i < batches; i++ {
			if _, _, err := sys.InsertFacts(durBatch(i)); err != nil {
				if got := parTuples(sys); got[fmt.Sprintf("x%d,y%d", i, i)] {
					panic("unacknowledged batch visible after log failure")
				}
				return i, sys
			}
			if i == 1 || i == 3 {
				// Flush mid-schedule; a failure here is not a lost batch.
				sys.Checkpoint()
			}
		}
		return batches, sys
	}

	clean := wal.NewMemFS()
	if acked, _ := run(clean); acked != batches {
		t.Fatalf("fault-free run acked %d of %d", acked, batches)
	}
	totalOps := clean.Ops()

	for _, short := range []bool{false, true} {
		for failAt := 1; failAt <= totalOps; failAt++ {
			fs := wal.NewMemFS()
			fs.ShortWrite = short
			fs.SetFailAt(failAt)
			acked, sys := run(fs)
			if sys != nil {
				// In-process state equals the acknowledged prefix exactly,
				// fault or not — checkpoint failures included.
				checkPrefix(t, parTuples(sys), acked, acked)
			}

			sys2, err := Load(durSrc, withStorageFS(fs.Crash(true))...)
			if err != nil {
				t.Fatalf("short=%v failAt=%d: recovery failed: %v", short, failAt, err)
			}
			checkPrefix(t, parTuples(sys2), acked, batches)
		}
	}
}

// TestStorageSweepsStaleTmp: debris a crashed flush leaves behind —
// half-written *.tmp segment and manifest files, segment files no
// manifest references — must be removed at open and must not disturb
// recovery.
func TestStorageSweepsStaleTmp(t *testing.T) {
	fs := wal.NewMemFS()
	sys, err := Load(durSrc, withStorageFS(fs)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.InsertFacts(durBatch(0)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant crash debris.
	for _, name := range []string{
		"data/seg-00000000000000ff-000-par~2.tmp",
		"data/manifest-00000000000000ff.tmp",
		"data/seg-00000000000000ff-001-orphan",
	} {
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("debris"))
		f.Close()
	}

	sys2, err := Load(durSrc, withStorageFS(fs)...)
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, parTuples(sys2), 1, 1)
	names, err := fs.List("data")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") || strings.Contains(n, "orphan") {
			t.Errorf("stale file %s survived open (dir: %v)", n, names)
		}
	}
	sys2.Close()
}

// TestStorageConflictsWithDurability: the two directory options must
// not silently diverge.
func TestStorageConflictsWithDurability(t *testing.T) {
	if _, err := Load(durSrc, WithStorageDir("a"), WithDurability("b"), withWALFS(wal.NewMemFS())); err == nil {
		t.Fatal("WithStorageDir + WithDurability on different dirs must fail")
	}
	// Same dir is fine: storage subsumes durability.
	fs := wal.NewMemFS()
	sys, err := Load(durSrc, WithStorageDir("d"), WithDurability("d"), withWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
}

// TestStorageGoldenEquivalence runs the golden corpus against a
// storage-backed System in three phases — before any flush, after an
// explicit flush (answers now come through segment parts), and after a
// close/reopen (parts re-attached from disk, dictionary re-interned) —
// across the same executor grid as TestGoldenEquivalence. Every phase
// and configuration must match the memory-backed reference byte for
// byte.
func TestStorageGoldenEquivalence(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.ldl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files found")
	}
	configs := []struct {
		name string
		opts []Option
	}{
		{"generic/seq", []Option{WithCompiledKernels(false)}},
		{"tuple/seq", []Option{WithBatchSize(1)}},
		{"batched/seq", nil},
		{"generic/par", []Option{WithCompiledKernels(false), WithParallel(4)}},
		{"tuple/par", []Option{WithBatchSize(1), WithParallel(4)}},
		{"batched/par", []Option{WithParallel(4)}},
	}
	render := func(rows [][]string) string {
		var b strings.Builder
		for _, r := range rows {
			b.WriteString(strings.Join(r, ","))
			b.WriteByte('\n')
		}
		return b.String()
	}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), ".ldl")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			mem, err := Load(string(src))
			if err != nil {
				t.Fatal(err)
			}
			fs := wal.NewMemFS()
			disk, err := Load(string(src), withStorageFS(fs)...)
			if err != nil {
				t.Fatal(err)
			}
			check := func(phase string, sys *System) {
				for _, goal := range mem.Queries() {
					for _, cfg := range configs {
						wantRows, _, err := mem.EvaluateUnoptimized(goal, cfg.opts...)
						if err != nil {
							t.Fatalf("%s / %s: memory: %v", goal, cfg.name, err)
						}
						gotRows, _, err := sys.EvaluateUnoptimized(goal, cfg.opts...)
						if err != nil {
							t.Fatalf("%s / %s / %s: storage: %v", phase, goal, cfg.name, err)
						}
						if got, want := render(gotRows), render(wantRows); got != want {
							t.Errorf("%s / %s / %s: storage answers diverge\n got:\n%s\nwant:\n%s",
								phase, goal, cfg.name, got, want)
						}
					}
				}
			}
			check("unflushed", disk)
			if err := disk.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			check("flushed", disk)
			if err := disk.Close(); err != nil {
				t.Fatal(err)
			}
			disk2, err := Load(string(src), withStorageFS(fs.Crash(true))...)
			if err != nil {
				t.Fatal(err)
			}
			check("reopened", disk2)
			disk2.Close()
		})
	}
}

// TestStorageWithMaterializedViews: the storage tier composes with
// incremental view maintenance — flushes freeze the base tails the
// views watermark against, and a reopen rebuilds the views over
// attached segments.
func TestStorageWithMaterializedViews(t *testing.T) {
	fs := wal.NewMemFS()
	opts := append(withStorageFS(fs), WithMaterialized())
	sys, err := Load(durSrc, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := sys.InsertFacts(durBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Inserts after the flush continue the fixpoint on frozen bases.
	if _, _, err := sys.InsertFacts(durBatch(3)); err != nil {
		t.Fatal(err)
	}
	rows, ok, err := sys.AnswersFromViews("anc(x3, Y)")
	if err != nil || !ok || len(rows) == 0 {
		t.Fatalf("views after flush: rows=%v ok=%v err=%v", rows, ok, err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	sys2, err := Load(durSrc, append(withStorageFS(fs.Crash(true)), WithMaterialized())...)
	if err != nil {
		t.Fatal(err)
	}
	rows2, ok, err := sys2.AnswersFromViews("anc(x3, Y)")
	if err != nil || !ok {
		t.Fatalf("views after reopen: ok=%v err=%v", ok, err)
	}
	if fmt.Sprint(rows2) != fmt.Sprint(rows) {
		t.Errorf("view answers changed across reopen: %v != %v", rows2, rows)
	}
	sys2.Close()
}
