package ldl

// Replication support: the follower side of log shipping, and the
// leader-side accessors the shipper needs.
//
// A follower is an ordinary System (same program, same query engine)
// whose fact base advances only through ApplyReplicated — the shipped
// wal.Batch stream, fed through the same code path boot-time recovery
// uses — and whose InsertFacts refuses with a *ReadOnlyError naming the
// leader. Because batches apply in leader-epoch order and each publishes
// atomically, every read the follower serves sees an exact epoch-prefix
// of the leader's acknowledged history; staleness is visible as the gap
// between the follower's Epoch and the leader's. Promote flips the
// switch for manual failover: the follower keeps its applied prefix and
// starts accepting writes, numbering new epochs after the last applied
// one.

import (
	"errors"
	"fmt"

	"ldl/internal/stats"
	"ldl/internal/store"
	"ldl/internal/wal"
)

// ErrReadOnly is matched (errors.Is) by the error InsertFacts returns
// on a replica. The concrete type is *ReadOnlyError, which names the
// leader to redirect writes to.
var ErrReadOnly = errors.New("ldl: read-only replica")

// ReadOnlyError rejects a write on a replica; Leader is the address to
// redirect to ("" when unknown).
type ReadOnlyError struct {
	Leader string
}

func (e *ReadOnlyError) Error() string {
	if e.Leader == "" {
		return "ldl: read-only replica"
	}
	return fmt.Sprintf("ldl: read-only replica (leader %s)", e.Leader)
}

func (e *ReadOnlyError) Is(target error) bool { return target == ErrReadOnly }

// ErrFenced is matched (errors.Is) by the error ApplyReplicated returns
// for a stream from a deposed leader. The concrete type is *FencedError.
var ErrFenced = errors.New("ldl: fenced (stale leader term)")

// FencedError rejects a replicated batch whose leader term is below the
// local high-water mark — the stream comes from a leader that has since
// been superseded and must never be applied.
type FencedError struct {
	Local  uint64 // the high-water term this system has observed
	Stream uint64 // the stale term the batch carried
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("ldl: fenced: stream term %d below local term %d", e.Stream, e.Local)
}

func (e *FencedError) Is(target error) bool { return target == ErrFenced }

// SetReadOnly puts the System in replica mode: InsertFacts fails with a
// *ReadOnlyError pointing at leader until Promote. ApplyReplicated and
// reads are unaffected.
func (s *System) SetReadOnly(leader string) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.readOnly = true
	s.leaderAddr = leader
}

// ReadOnly reports whether the System is in replica mode and the leader
// address writes should be redirected to.
func (s *System) ReadOnly() (bool, string) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.readOnly, s.leaderAddr
}

// Term reports the leader-term high-water mark: the term this system
// writes under when it leads, and the newest term it has observed (and
// fences older streams against) when it follows.
func (s *System) Term() uint64 {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.term
}

// FencedEvents counts fencing events: stale-term batches refused by
// ApplyReplicated and read-only demotions latched by ObserveTerm.
func (s *System) FencedEvents() int64 { return s.fenced.Load() }

// ObserveTerm adopts a leader term seen on the wire (a replication
// welcome, a heartbeat, a peer's HELLO probe). Terms at or below the
// high-water mark change nothing. A higher term raises the mark — and
// if this system currently leads, latches it read-only: a higher term
// means it was deposed, and accepting further writes would split the
// brain. demoted reports that latch. On a durable system the bump is
// persisted as a term record so the fence survives a restart.
func (s *System) ObserveTerm(t uint64) (demoted bool) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if t <= s.term {
		return false
	}
	s.term = t
	if !s.readOnly {
		s.readOnly = true
		s.leaderAddr = ""
		s.fenced.Add(1)
		demoted = true
	}
	if s.wal != nil {
		// Best effort: a failed append wedges the log, which already
		// refuses writes — the in-memory mark keeps fencing regardless.
		s.wal.AppendTerm(t, s.headState().id)
	}
	return demoted
}

// Promote ends replica mode — failover. The System keeps every epoch it
// has applied, bumps the leader term past every term it has observed,
// persists the bump (durable systems refuse to promote if the term
// record cannot be written — an unpersisted bump could un-fence a stale
// stream after a restart), and starts accepting InsertFacts, numbering
// new epochs after the returned one. The term bump is what makes
// concurrent failover safe: followers fence every stream below their
// high-water mark, so once any write of the new term is applied, the
// old leader's stream is dead on arrival.
func (s *System) Promote() (epoch, term uint64, err error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	head := s.headState().id
	next := s.term + 1
	if s.wal != nil {
		if err := s.wal.AppendTerm(next, head); err != nil {
			return head, s.term, fmt.Errorf("ldl: promote: persisting term %d: %w", next, err)
		}
	}
	s.term = next
	s.readOnly = false
	s.leaderAddr = ""
	return head, next, nil
}

// ApplyReplicated applies one shipped batch — an incremental InsertFacts
// record or a checkpoint seed — to the fact base, publishing it under
// the leader's epoch number so follower and leader epochs correspond
// 1:1. Batches at or below the current epoch are duplicates (redelivery
// after a reconnect, or a seed the follower already covers) and are
// skipped, so the stream may be at-least-once; batches must otherwise
// arrive in increasing epoch order. On a durable follower the batch is
// appended to the follower's own WAL first, preserving write-ahead
// ordering through crashes on the replica itself.
func (s *System) ApplyReplicated(b wal.Batch) (err error) {
	defer guard(&err)
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	// Fencing: a batch from a term below the high-water mark comes from
	// a deposed leader and is refused — before the epoch dedup, so even
	// a "duplicate" from a stale stream surfaces the fence. Term 0 marks
	// a pre-term stream and bypasses the check.
	if b.Term > 0 && b.Term < s.term {
		s.fenced.Add(1)
		return &FencedError{Local: s.term, Stream: b.Term}
	}
	if b.Term > s.term {
		s.term = b.Term
		if s.wal != nil {
			// Raise the log's mark so a later checkpoint stamps it; the
			// batch append below persists the term itself.
			s.wal.SetTerm(b.Term)
		}
	}
	if b.Kind == wal.RecTerm {
		return nil // a shipped term bump carries no facts
	}
	ep := s.headState()
	if b.Epoch <= ep.id {
		return nil // duplicate delivery
	}
	db2 := ep.db.Fork()
	touched := make(map[string]int, len(b.Rels))
	for _, r := range b.Rels {
		if s.prog.IsDerived(r.Tag) {
			return fmt.Errorf("ldl: replicate: %s is a derived predicate in the current program (leader and follower programs differ?)", r.Tag)
		}
		rel := db2.EnsureOwned(r.Tag, r.Arity)
		if _, seen := touched[r.Tag]; !seen {
			touched[r.Tag] = rel.Len() // pre-batch watermark
		}
		for _, tup := range r.Tuples {
			if _, err := rel.Insert(store.Tuple(tup)); err != nil {
				return err
			}
		}
	}
	next := newEpoch(b.Epoch, db2, stats.Update(ep.cat, db2, touched))
	// Followers maintain their views through the same incremental path
	// the leader uses: the shipped batch's rows are this epoch's seed
	// delta, so catch-up cost tracks the stream, not the database.
	s.maintainViews(next, ep)
	if s.wal != nil {
		if err := s.wal.Append(b); err != nil {
			return fmt.Errorf("ldl: replicate: follower log: %w", err)
		}
	}
	s.head = next
	s.publish(next)
	s.maybeCheckpoint()
	return nil
}

// DurabilityStats is the WAL health snapshot STATS exposes.
type DurabilityStats struct {
	// Durable reports whether the System has a WAL at all; the other
	// fields are zero when it does not.
	Durable bool
	// SegmentBytes is the size of the active log segment.
	SegmentBytes int64
	// Wedged reports a latched log failure: the fact base still serves
	// reads but acknowledges no further writes.
	Wedged bool
	// LastCheckpoint is the epoch of the newest checkpoint taken by this
	// process (0 = none yet; the boot-time one is in Recovery).
	LastCheckpoint uint64
}

// Durability reports the WAL health counters.
func (s *System) Durability() DurabilityStats {
	if s.wal == nil {
		return DurabilityStats{}
	}
	return DurabilityStats{
		Durable:        true,
		SegmentBytes:   s.wal.SegmentSize(),
		Wedged:         s.wal.Wedged() != nil,
		LastCheckpoint: s.wal.LastCheckpoint(),
	}
}

// WALAccess exposes the log directory and filesystem of a durable
// System — what a leader-side shipper needs to read segments and plan
// follower catch-up (wal.PlanShip / wal.ReadLive). ok is false for a
// non-durable System, which has nothing to ship.
func (s *System) WALAccess() (dir string, fs wal.FS, ok bool) {
	if s.wal == nil {
		return "", nil, false
	}
	return s.walDir, s.walFS, true
}
