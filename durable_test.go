package ldl

// System-level durability tests: the write-ahead-log glue in durable.go
// exercised through the public API, with the wal.MemFS fault injector as
// the filesystem. The wal package's own crash matrix proves the log's
// prefix property; these tests prove the *System* keeps its side of the
// contract — log before publish, recover on Load, checkpoint without
// losing anything, and zero footprint when durability is off.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ldl/internal/wal"
)

const durSrc = `
par(seed_a, seed_b).
anc(X, Y) <- par(X, Y).
anc(X, Y) <- par(X, Z), anc(Z, Y).
`

// durBatch renders the InsertFacts source for batch i; each batch is
// two distinct tuples.
func durBatch(i int) string {
	return fmt.Sprintf("par(x%d, y%d). par(y%d, z%d).", i, i, i, i)
}

// parTuples renders the current par/2 extension as a set.
func parTuples(s *System) map[string]bool {
	out := map[string]bool{}
	r := s.snapshot().db.Relation("par/2")
	if r == nil {
		return out
	}
	for _, t := range r.Tuples() {
		out[fmt.Sprintf("%v,%v", t[0], t[1])] = true
	}
	return out
}

// checkPrefix verifies that got is the base facts plus exactly the
// first k insert batches for some k in [min, max], returning k.
func checkPrefix(t *testing.T, got map[string]bool, min, max int) int {
	t.Helper()
	if !got["seed_a,seed_b"] {
		t.Fatalf("base fact missing: %v", got)
	}
	k := 0
	for ; k < max; k++ {
		if !got[fmt.Sprintf("x%d,y%d", k, k)] {
			break
		}
		if !got[fmt.Sprintf("y%d,z%d", k, k)] {
			t.Fatalf("batch %d recovered only half: %v", k, got)
		}
	}
	// Nothing beyond the prefix.
	if want := 1 + 2*k; len(got) != want {
		t.Fatalf("recovered %d tuples, want %d (prefix %d): %v", len(got), want, k, got)
	}
	if k < min {
		t.Fatalf("recovered prefix %d < %d acknowledged batches", k, min)
	}
	return k
}

func TestDurableRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sys, err := Load(durSrc, WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rep := sys.Recovery(); rep == nil || rep.RecordsReplayed != 0 {
		t.Fatalf("fresh dir recovery = %+v", rep)
	}
	want, err := sys.Query("anc(seed_a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := sys.InsertFacts(durBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	want2, err := sys.Query("anc(x0, Y)")
	if err != nil {
		t.Fatal(err)
	}
	epoch := sys.Epoch()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: same program source, same directory.
	sys2, err := Load(durSrc, WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	rep := sys2.Recovery()
	if rep == nil || rep.Epoch != epoch {
		t.Fatalf("recovery = %+v, want epoch %d", rep, epoch)
	}
	// Close checkpointed, so the restart loads the snapshot, not the log.
	if rep.CheckpointEpoch != epoch || rep.RecordsReplayed != 0 {
		t.Errorf("restart after clean Close should load from checkpoint: %+v", rep)
	}
	if !strings.Contains(rep.String(), "epoch") {
		t.Errorf("report renders as %q", rep)
	}
	checkPrefix(t, parTuples(sys2), 4, 4)
	// Identical answers before and after the restart.
	got, err := sys2.Query("anc(seed_a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("anc(seed_a,Y): %v != %v", got, want)
	}
	got2, err := sys2.Query("anc(x0, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got2) != fmt.Sprint(want2) {
		t.Errorf("anc(x0,Y): %v != %v", got2, want2)
	}
	// The epoch sequence continues: the next insert is strictly newer
	// than anything acknowledged before the restart.
	_, e, err := sys2.InsertFacts(durBatch(9))
	if err != nil {
		t.Fatal(err)
	}
	if e <= epoch {
		t.Errorf("post-restart epoch %d <= pre-restart %d", e, epoch)
	}
}

// TestDurableCrashPoints is the system-level crash matrix: a fault is
// injected at every filesystem operation of a fixed InsertFacts
// schedule (including the one between log append and epoch publish —
// the append fails, the epoch must not publish), then the process
// "crashes" losing unsynced data, reboots, and must recover a prefix
// covering every acknowledged batch.
func TestDurableCrashPoints(t *testing.T) {
	const batches = 5
	run := func(fs *wal.MemFS) (acked int, sys *System) {
		sys, err := Load(durSrc, WithDurability("data"), withWALFS(fs), WithCheckpointBytes(-1))
		if err != nil {
			return 0, nil
		}
		for i := 0; i < batches; i++ {
			if _, _, err := sys.InsertFacts(durBatch(i)); err != nil {
				// The failed batch must not be visible in-process either.
				if got := parTuples(sys); got[fmt.Sprintf("x%d,y%d", i, i)] {
					panic("unacknowledged batch visible after log failure")
				}
				return i, sys
			}
		}
		return batches, sys
	}

	clean := wal.NewMemFS()
	if acked, _ := run(clean); acked != batches {
		t.Fatalf("fault-free run acked %d of %d", acked, batches)
	}
	totalOps := clean.Ops()

	for _, short := range []bool{false, true} {
		for failAt := 1; failAt <= totalOps; failAt++ {
			fs := wal.NewMemFS()
			fs.ShortWrite = short
			fs.SetFailAt(failAt)
			acked, sys := run(fs)
			if sys != nil {
				// In-process state always equals the acknowledged prefix
				// exactly, fault or not.
				checkPrefix(t, parTuples(sys), acked, acked)
			}

			sys2, err := Load(durSrc, WithDurability("data"), withWALFS(fs.Crash(true)))
			if err != nil {
				t.Fatalf("short=%v failAt=%d: recovery failed: %v", short, failAt, err)
			}
			checkPrefix(t, parTuples(sys2), acked, batches)
		}
	}
}

func TestDurableCheckpointRetiresLog(t *testing.T) {
	fs := wal.NewMemFS()
	// Tiny threshold: every insert overflows it and triggers the
	// background checkpointer.
	sys, err := Load(durSrc, WithDurability("data"), withWALFS(fs), WithCheckpointBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := sys.InsertFacts(durBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The checkpointer is async; wait for any snapshot to prove it
	// fired. (A trigger arriving while a checkpoint is in flight is
	// deliberately dropped, so we cannot demand one per insert.)
	deadline := time.Now().Add(5 * time.Second)
	for {
		names, _ := fs.List("data")
		found := false
		for _, n := range names {
			if strings.HasPrefix(n, "snapshot-") {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no snapshot appeared; dir: %v", names)
		}
		time.Sleep(time.Millisecond)
	}
	// Close takes a final checkpoint at the last epoch.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart must come entirely from the checkpoint.
	sys2, err := Load(durSrc, WithDurability("data"), withWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	rep := sys2.Recovery()
	if rep.RecordsReplayed != 0 || rep.CheckpointTuples == 0 {
		t.Fatalf("restart should load from checkpoint only: %+v", rep)
	}
	checkPrefix(t, parTuples(sys2), 3, 3)
}

// TestDurableRejectsDerivedOverlap: a log written under a program where
// a tag was a base relation must fail recovery loudly if the program now
// derives that tag, instead of silently merging facts into an IDB.
func TestDurableRejectsDerivedOverlap(t *testing.T) {
	fs := wal.NewMemFS()
	sys, err := Load("p(a).", WithDurability("data"), withWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.InsertFacts("extra(k, v)."); err != nil {
		t.Fatal(err)
	}
	// Close would checkpoint; keep the log as the only state.
	changed := `
p(a).
extra(X, Y) <- p(X), p(Y).
`
	if _, err := Load(changed, WithDurability("data"), withWALFS(fs)); err == nil ||
		!strings.Contains(err.Error(), "derived") {
		t.Fatalf("recovery into a derived predicate must fail, got %v", err)
	}
}

func TestDurabilityOffIsFree(t *testing.T) {
	sys, err := Load(durSrc)
	if err != nil {
		t.Fatal(err)
	}
	if sys.wal != nil || sys.Recovery() != nil {
		t.Fatal("non-durable System grew durability state")
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("Close on non-durable System: %v", err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint on non-durable System: %v", err)
	}
	if _, _, err := sys.InsertFacts(durBatch(0)); err != nil {
		t.Fatal(err)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		dir := t.TempDir()
		sys, err := Load(durSrc, WithDurability(dir), WithFsyncPolicy(p, 10*time.Millisecond))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if _, _, err := sys.InsertFacts(durBatch(0)); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := sys.Close(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		sys2, err := Load(durSrc, WithDurability(dir))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		checkPrefix(t, parTuples(sys2), 1, 1)
		sys2.Close()
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad policy parsed")
	}
	// Sanity: the data dir really is on the real filesystem.
	dir := t.TempDir()
	sys, _ := Load(durSrc, WithDurability(dir))
	sys.InsertFacts(durBatch(1))
	sys.Close()
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("ReadDir(%s) = %v, %v", dir, ents, err)
	}
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), "log-") && !strings.HasPrefix(e.Name(), "snapshot-") {
			t.Errorf("unexpected file %s", filepath.Join(dir, e.Name()))
		}
	}
}
